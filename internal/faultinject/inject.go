// Package faultinject turns the repo's failure-atomicity claim into a
// machine-checked property. The paper's adaptive software cache only earns
// its keep if write-combining plus eviction-time flushing stays crash
// consistent, and the dangerous crash points are exactly the persistence
// boundaries: each asynchronous line write-back, each line of a FASE-end
// drain, each undo-log append, each group-commit ack. This package numbers
// every one of those boundaries with an Injector, first running a workload
// in counting mode to enumerate the sites, then replaying it once per site
// with a simulated power failure (pmem.Heap.Crash) at exactly that
// boundary, recovering, and checking invariants: no acked write lost, no
// unacked write visible, undo rollback complete, dirty-line state empty.
//
// The interposition points are the seams the runtime already exposes:
// core.FlushSink (wrapped via atlas/kv Options.WrapSink), the undo log's
// atlas.UndoOp hook, and kv's post-commit ack boundary. An armed site
// panics with a Crash value; the explorer (or kv's shard writer, via
// Options.IsInjectedCrash) recovers it and abandons the failure-atomic
// section mid-flight, exactly as a power failure at that instruction
// would.
package faultinject

import (
	"flag"
	"fmt"
	"sync/atomic"

	"nvmcache/internal/atlas"
	"nvmcache/internal/core"
	"nvmcache/internal/trace"
)

// seedFlag overrides the root seed of randomized exploration schedules
// (ExploreKVRandom); the seed in use is always part of the Report so a
// failing sweep can be replayed exactly.
var seedFlag = flag.Uint64("faultinject.seed", 1,
	"root seed for randomized crash-point exploration")

// FlagSeed returns the -faultinject.seed value.
func FlagSeed() uint64 { return *seedFlag }

// Kind classifies an injection site by the persistence boundary it sits
// on. Each kind leaves persistent state in a structurally different
// intermediate shape, which is why the Report counts them separately.
type Kind uint8

const (
	// KindFlushLine is a mid-FASE asynchronous line write-back (a cache
	// eviction or an eager store flush).
	KindFlushLine Kind = iota
	// KindDrainLine is one line persisted inside a FASE-end drain; a crash
	// here leaves the drain half done.
	KindDrainLine
	// KindDrainDone is the barrier completing a drain, before control
	// returns to the caller.
	KindDrainDone
	// KindUndoBegin..KindUndoCommit mirror atlas.UndoBegin..UndoCommit.
	KindUndoBegin
	KindUndoRecord
	KindUndoPublish
	KindUndoCommit
	// KindAck sits between a kv batch's durable commit and the delivery of
	// its acks; a crash here loses acks but must lose no data.
	KindAck
	// KindPipeEnqueue is the mutator→flush-pipeline hand-off of one line
	// (async eviction and drain line alike), before it enters the ring; a
	// crash here leaves the line dirty and unqueued.
	KindPipeEnqueue
	// KindPipeBatch is the pipeline worker handing one batch of async
	// write-backs to the inner sink, before any line of the batch lands.
	KindPipeBatch
	// KindPipeEpoch is the barrier completing a pipelined drain group,
	// after its lines landed but before the epoch is marked persisted — the
	// window where an awaiter must not yet have been released.
	KindPipeEpoch
	// KindAbsorbMerge is one counter op folding into kv's volatile
	// absorption accumulator during batch planning; nothing is durable yet,
	// so a crash here must leave the op nacked with no trace on the heap.
	KindAbsorbMerge
	// KindAbsorbThreshold is a threshold-triggered accumulator commit,
	// before its net-delta FASE begins.
	KindAbsorbThreshold
	// KindAbsorbDeadline is a deadline-triggered (or shutdown-drain)
	// accumulator commit, before its net-delta FASE begins.
	KindAbsorbDeadline
	// KindAbsorbAck sits between an absorbed commit's durability and the
	// delivery of the parked counter acks — like KindAck, a crash here
	// loses acks but must lose no data.
	KindAbsorbAck
	// KindCkptBegin fires before a checkpoint serializes its tree snapshot;
	// a crash here leaves both image slots exactly as they were.
	KindCkptBegin
	// KindCkptPage fires before each payload chunk of a checkpoint image is
	// persisted; a crash here leaves the target slot torn (and invalidated).
	KindCkptPage
	// KindCkptPublish fires immediately before the seal that makes a new
	// image valid — the last instant the previous image must still win.
	KindCkptPublish
	// KindLogTruncate fires after an image seals, before the redo-journal
	// head advances past entries the older image no longer needs.
	KindLogTruncate
	// KindRecoverReplay fires before each rebuild/replay batch while a
	// recovery reconstructs a shard from an image and its journal suffix
	// (and before each undo-log rollback inside atlas recovery); a crash
	// here cuts the recovery itself, which must be re-runnable.
	KindRecoverReplay
	// KindRecoverInstall fires before a rebuilt shard's generation is
	// installed (and before an undo log's final clear) — the boundary where
	// a recovery commits to its result.
	KindRecoverInstall

	numKinds
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindFlushLine:
		return "flush-line"
	case KindDrainLine:
		return "drain-line"
	case KindDrainDone:
		return "drain-done"
	case KindUndoBegin:
		return "undo-begin"
	case KindUndoRecord:
		return "undo-record"
	case KindUndoPublish:
		return "undo-publish"
	case KindUndoCommit:
		return "undo-commit"
	case KindAck:
		return "ack"
	case KindPipeEnqueue:
		return "pipe-enqueue"
	case KindPipeBatch:
		return "pipe-batch"
	case KindPipeEpoch:
		return "pipe-epoch"
	case KindAbsorbMerge:
		return "absorb-merge"
	case KindAbsorbThreshold:
		return "absorb-threshold"
	case KindAbsorbDeadline:
		return "absorb-deadline"
	case KindAbsorbAck:
		return "absorb-ack"
	case KindCkptBegin:
		return "ckpt-begin"
	case KindCkptPage:
		return "ckpt-page"
	case KindCkptPublish:
		return "ckpt-publish"
	case KindLogTruncate:
		return "log-truncate"
	case KindRecoverReplay:
		return "recover-replay"
	case KindRecoverInstall:
		return "recover-install"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Crash is the panic payload of a fired injection site.
type Crash struct {
	// Site is the boundary's number in this run's enumeration order.
	Site int
	// Kind is the boundary the crash landed on.
	Kind Kind
}

func (c Crash) String() string {
	return fmt.Sprintf("injected crash at site %d (%s)", c.Site, c.Kind)
}

// IsCrash reports whether a recovered panic value is an injected crash.
// It is the kv Options.IsInjectedCrash classifier.
func IsCrash(r any) bool { _, ok := r.(Crash); return ok }

// Injector numbers the persistence boundaries a workload crosses. In
// counting mode it only tallies them; armed at site k, the k-th boundary
// crossed while the injector is enabled panics with a Crash. Enable it
// only once the system under test is set up (after kv.Open / thread
// creation), so the site space covers the serving path and every
// enumerated site is one the workload deterministically revisits.
//
// Point may be called from any goroutine; at most one site ever fires.
type Injector struct {
	enabled atomic.Bool
	next    atomic.Int64
	target  int64 // -1: counting mode
	fired   atomic.Pointer[Crash]
	kinds   [numKinds]atomic.Int64
}

// NewCounting returns an injector that enumerates sites without firing.
func NewCounting() *Injector { return &Injector{target: -1} }

// NewArmed returns an injector that crashes at boundary number site.
func NewArmed(site int) *Injector { return &Injector{target: int64(site)} }

// Enable starts numbering (and, if armed, firing).
func (in *Injector) Enable() { in.enabled.Store(true) }

// Disable stops the injector; Points become no-ops again.
func (in *Injector) Disable() { in.enabled.Store(false) }

// Sites is the number of boundaries crossed while enabled.
func (in *Injector) Sites() int { return int(in.next.Load()) }

// Fired returns the crash this injector raised, if any.
func (in *Injector) Fired() (Crash, bool) {
	if c := in.fired.Load(); c != nil {
		return *c, true
	}
	return Crash{}, false
}

// Kinds returns the per-kind census of boundaries crossed.
func (in *Injector) Kinds() map[Kind]int {
	m := make(map[Kind]int, numKinds)
	for k := Kind(0); k < numKinds; k++ {
		if n := in.kinds[k].Load(); n > 0 {
			m[k] = int(n)
		}
	}
	return m
}

// Point marks one persistence boundary. If this is the armed site, it
// panics with a Crash; the caller side (explorer or kv shard writer) is
// responsible for recovering the panic and realizing the heap crash.
func (in *Injector) Point(kind Kind) {
	if !in.enabled.Load() {
		return
	}
	site := in.next.Add(1) - 1
	in.kinds[kind].Add(1)
	if site == in.target {
		c := Crash{Site: int(site), Kind: kind}
		if in.fired.CompareAndSwap(nil, &c) {
			panic(c)
		}
	}
}

// AckPoint is the kv Options.AckHook boundary.
func (in *Injector) AckPoint() { in.Point(KindAck) }

// PipeEnqueue is the flush-pipeline hand-off boundary; install it as
// core.PipelineConfig.OnEnqueue so every line the mutator hands to the
// pipeline is a numbered site (the hook runs on the mutator, outside the
// pipeline lock, so firing here is recoverable like any store-path site).
func (in *Injector) PipeEnqueue(trace.LineAddr) { in.Point(KindPipeEnqueue) }

// pipelineConfig builds the exploration pipeline configuration: always
// synchronous — site numbering must be deterministic, and a site firing on
// a background worker goroutine could not be recovered by the mutator —
// with small ring/batch bounds so batching boundaries are actually hit.
// inj is nil for recovery stores, which must replay no faults.
func pipelineConfig(enabled bool, inj *Injector) core.PipelineConfig {
	cfg := core.PipelineConfig{Enabled: enabled, Synchronous: true, Depth: 64, BatchSize: 8}
	if inj != nil {
		cfg.OnEnqueue = inj.PipeEnqueue
	}
	return cfg
}

// WrapSink has the shape of atlas/kv Options.WrapSink: it interposes the
// injector's numbered sites on a thread's flush sink. A Drain is
// decomposed into per-line boundaries so a crash can land between any two
// write-backs of a FASE-end drain — the exact window where a policy that
// acknowledged too early would lose data.
func (in *Injector) WrapSink(_ int32, inner core.FlushSink) core.FlushSink {
	base := &sink{in: in, inner: inner}
	if cs, ok := inner.(core.CaptureSink); ok {
		return &captureSink{sink: base, capt: cs}
	}
	return base
}

// UndoHook has the shape of atlas Options.UndoHook, mapping undo-log
// persistence points onto injection sites.
func (in *Injector) UndoHook() func(atlas.UndoOp) {
	return func(op atlas.UndoOp) {
		switch op {
		case atlas.UndoBegin:
			in.Point(KindUndoBegin)
		case atlas.UndoRecord:
			in.Point(KindUndoRecord)
		case atlas.UndoPublish:
			in.Point(KindUndoPublish)
		case atlas.UndoCommit:
			in.Point(KindUndoCommit)
		}
	}
}

// RecoverHook has the shape of atlas RecoverOptions.Hook (and kv
// Options.RecoverHook), mapping recovery-phase persistence points onto
// injection sites. Crashing a recovery must leave the heap recoverable by
// a second, clean Recover — these sites prove that idempotence.
func (in *Injector) RecoverHook() func(atlas.RecoverOp) {
	return func(op atlas.RecoverOp) {
		switch op {
		case atlas.RecoverReplay:
			in.Point(KindRecoverReplay)
		case atlas.RecoverInstall:
			in.Point(KindRecoverInstall)
		}
	}
}

type sink struct {
	in    *Injector
	inner core.FlushSink
}

func (s *sink) FlushLine(line trace.LineAddr) {
	s.in.Point(KindFlushLine)
	s.inner.FlushLine(line)
}

func (s *sink) Drain(lines []trace.LineAddr) {
	for _, line := range lines {
		s.in.Point(KindDrainLine)
		s.inner.FlushLine(line)
	}
	s.in.Point(KindDrainDone)
	s.inner.Drain(nil)
}

func (s *sink) Stats() core.FlushStats { return s.inner.Stats() }

// captureSink extends the injection sink over core.CaptureSink (built only
// when the inner sink captures), so a flush pipeline stacked above the
// injector keeps enqueue-time capture while the worker's batched calls
// become numbered sites: one per async batch (the crash lands before the
// batch's first line), one per drain line (the batch is decomposed, like
// Drain above, so a crash can land between any two write-backs), and one
// at the epoch barrier.
type captureSink struct {
	*sink
	capt core.CaptureSink
}

func (s *captureSink) CaptureLine(line trace.LineAddr, dst []byte) {
	s.capt.CaptureLine(line, dst)
}

func (s *captureSink) ApplyBatch(lines []trace.LineAddr, data []byte) {
	s.in.Point(KindPipeBatch)
	s.capt.ApplyBatch(lines, data)
}

func (s *captureSink) DrainCaptured(lines []trace.LineAddr, data []byte) {
	for i := range lines {
		s.in.Point(KindDrainLine)
		s.capt.ApplyBatch(lines[i:i+1], data[i*trace.LineSize:(i+1)*trace.LineSize])
	}
	s.in.Point(KindPipeEpoch)
	s.capt.DrainCaptured(nil, nil)
}

// DropDrains returns a deliberately broken sink that acknowledges FASE-end
// drains without writing anything back — the flush-after-ack ordering bug
// the exploration engine exists to catch. Committed FASEs then have
// truncated undo logs but undrained data, so recovery cannot restore them.
// Negative tests install it as explorer middleware; it must never appear
// outside a test.
func DropDrains(inner core.FlushSink) core.FlushSink { return dropDrains{inner} }

type dropDrains struct{ inner core.FlushSink }

func (d dropDrains) FlushLine(line trace.LineAddr) { d.inner.FlushLine(line) }
func (d dropDrains) Drain([]trace.LineAddr)        {}
func (d dropDrains) Stats() core.FlushStats        { return d.inner.Stats() }
