package faultinject

import (
	"testing"

	"nvmcache/internal/core"
	"nvmcache/internal/trace"
)

// TestInjectorCounting checks the enumeration mechanics: disabled points
// are free, enabled points number densely, kinds are tallied.
func TestInjectorCounting(t *testing.T) {
	in := NewCounting()
	in.Point(KindFlushLine) // disabled: not counted
	in.Enable()
	in.Point(KindFlushLine)
	in.Point(KindUndoRecord)
	in.Point(KindUndoRecord)
	in.Disable()
	in.Point(KindAck) // disabled again
	if got := in.Sites(); got != 3 {
		t.Fatalf("Sites() = %d, want 3", got)
	}
	kinds := in.Kinds()
	if kinds[KindFlushLine] != 1 || kinds[KindUndoRecord] != 2 || kinds[KindAck] != 0 {
		t.Fatalf("Kinds() = %v", kinds)
	}
	if _, fired := in.Fired(); fired {
		t.Fatal("counting injector fired")
	}
}

// TestInjectorFiresOnce checks that the armed site panics with its Crash
// payload exactly once, and that later points keep counting quietly.
func TestInjectorFiresOnce(t *testing.T) {
	in := NewArmed(1)
	in.Enable()
	in.Point(KindFlushLine) // site 0: passes
	func() {
		defer func() {
			r := recover()
			if !IsCrash(r) {
				t.Fatalf("recover() = %v, want a Crash", r)
			}
			c := r.(Crash)
			if c.Site != 1 || c.Kind != KindDrainLine {
				t.Fatalf("crash = %+v, want site 1 kind drain-line", c)
			}
		}()
		in.Point(KindDrainLine) // site 1: fires
		t.Fatal("armed point did not panic")
	}()
	in.Point(KindAck) // after firing: counted, no panic
	c, fired := in.Fired()
	if !fired || c.Site != 1 {
		t.Fatalf("Fired() = %+v, %v", c, fired)
	}
	if got := in.Sites(); got != 3 {
		t.Fatalf("Sites() = %d, want 3", got)
	}
	if IsCrash(42) || IsCrash(nil) {
		t.Fatal("IsCrash claimed a foreign panic value")
	}
}

// TestSinkDecomposesDrain pins the wrapper's contract: a Drain of n lines
// becomes n per-line boundaries plus one completion barrier, and the lines
// still reach the inner sink.
func TestSinkDecomposesDrain(t *testing.T) {
	in := NewCounting()
	in.Enable()
	inner := core.NewCountingSink(nil)
	s := in.WrapSink(0, inner)
	s.FlushLine(7)
	s.Drain([]trace.LineAddr{1, 2, 3})
	if got := in.Sites(); got != 1+3+1 {
		t.Fatalf("Sites() = %d, want 5", got)
	}
	kinds := in.Kinds()
	if kinds[KindFlushLine] != 1 || kinds[KindDrainLine] != 3 || kinds[KindDrainDone] != 1 {
		t.Fatalf("Kinds() = %v", kinds)
	}
	if st := s.Stats(); st.Async != 4 || st.Barriers != 1 {
		t.Fatalf("inner stats = %+v, want 4 line flushes and 1 barrier", st)
	}
}

// TestDropDrainsDouble pins the negative-test double: drains vanish,
// asynchronous flushes pass through.
func TestDropDrainsDouble(t *testing.T) {
	inner := core.NewCountingSink(nil)
	d := DropDrains(inner)
	d.FlushLine(9)
	d.Drain([]trace.LineAddr{1, 2, 3})
	if st := d.Stats(); st.Async != 1 || st.Drained != 0 || st.Barriers != 0 {
		t.Fatalf("stats = %+v, want 1 async flush and the drain dropped", st)
	}
}
