package faultinject

import (
	"testing"
	"time"
)

// TestExploreKVExhaustive is the acceptance property for the whole
// subsystem: the kv group-commit workload enumerates well over 100
// distinct injection sites, every single one is crashed at and recovered
// from, and every recovery satisfies the service contract (acked writes
// durable with exact values, the nacked op rolled back — or, for
// ack-boundary crashes, committed untorn — tree invariants, heap
// consistency, empty dirty state).
func TestExploreKVExhaustive(t *testing.T) {
	o := DefaultKVOptions()
	if testing.Short() {
		// Still exhaustive — every enumerated site is explored — over a
		// slightly smaller op sequence so -race CI stays fast.
		o.Ops, o.Keys = 7, 3
	}
	rep, err := ExploreKV(o)
	if err != nil {
		t.Fatalf("ExploreKV: %v\nreport: %v", err, rep)
	}
	if rep.Sites < 100 {
		t.Errorf("only %d sites enumerated, want >= 100", rep.Sites)
	}
	if rep.Crashes != rep.Sites || rep.Missed != 0 {
		t.Errorf("sweep not exhaustive: %v", rep)
	}
	for _, k := range []Kind{KindUndoRecord, KindUndoPublish, KindUndoCommit, KindDrainLine, KindAck} {
		if rep.Kinds[k] == 0 {
			t.Errorf("no %v sites in the group-commit path: %v", k, rep)
		}
	}
	t.Logf("%v", rep)
}

// TestExploreKVPipeline is the acceptance sweep for the overlapped commit
// protocol: with the flush pipeline enabled (publish batch N, apply batch
// N+1, settle), every enumerated site — now including the pipeline
// hand-off, per-batch and epoch boundaries, and the ack boundary that
// moved to settle — is crashed at and recovered from with the full service
// contract intact: no acked write lost, zero dirty lines after recovery.
func TestExploreKVPipeline(t *testing.T) {
	o := DefaultKVOptions()
	o.Pipeline = true
	if testing.Short() {
		o.Ops, o.Keys = 7, 3
	}
	rep, err := ExploreKV(o)
	if err != nil {
		t.Fatalf("ExploreKV(pipeline): %v\nreport: %v", err, rep)
	}
	if rep.Crashes != rep.Sites || rep.Missed != 0 {
		t.Errorf("sweep not exhaustive: %v", rep)
	}
	for _, k := range []Kind{KindUndoRecord, KindUndoCommit, KindDrainLine,
		KindPipeEnqueue, KindPipeEpoch, KindAck} {
		if rep.Kinds[k] == 0 {
			t.Errorf("no %v sites in the pipelined group-commit path: %v", k, rep)
		}
	}
	t.Logf("%v", rep)
}

// TestExploreKVRandomPipeline runs the seeded concurrent mode under the
// overlapped protocol: concurrent clients, crashes that can land with one
// batch in flight and its successor mid-FASE (both logs active, rolled
// back newest-first at recovery).
func TestExploreKVRandomPipeline(t *testing.T) {
	o := DefaultKVOptions()
	o.Pipeline = true
	o.Runs = 8
	if testing.Short() {
		o.Runs = 3
	}
	rep, err := ExploreKVRandom(o)
	if err != nil {
		t.Fatalf("ExploreKVRandom(pipeline) (reproduce with -faultinject.seed=%d): %v\nreport: %v", rep.Seed, err, rep)
	}
	if rep.Runs != o.Runs || rep.Crashes+rep.Missed != rep.Runs {
		t.Errorf("run accounting broken: %v", rep)
	}
	t.Logf("%v", rep)
}

// TestExploreKVAbsorbThreshold is the exhaustive sweep for the logical
// write-absorption layer in its threshold shape: AbsorbThreshold=1 folds
// every counter op of the workload into its own net-delta commit, so the
// site space gains the merge, threshold-commit and absorb-ack boundaries —
// and every one of them, crashed at and recovered from, must lose no acked
// op (an absorb-ack crash commits the nacked op untorn, like an ack
// crash; a merge crash leaves nothing durable).
func TestExploreKVAbsorbThreshold(t *testing.T) {
	o := DefaultKVOptions()
	o.Absorb = true
	o.AbsorbThreshold = 1
	o.AbsorbDeadline = time.Second
	if testing.Short() {
		o.Ops, o.Keys = 7, 3
	}
	rep, err := ExploreKV(o)
	if err != nil {
		t.Fatalf("ExploreKV(absorb, threshold): %v\nreport: %v", err, rep)
	}
	if rep.Crashes != rep.Sites || rep.Missed != 0 {
		t.Errorf("sweep not exhaustive: %v", rep)
	}
	for _, k := range []Kind{KindAbsorbMerge, KindAbsorbThreshold, KindAbsorbAck,
		KindUndoRecord, KindDrainLine, KindAck} {
		if rep.Kinds[k] == 0 {
			t.Errorf("no %v sites in the absorbed group-commit path: %v", k, rep)
		}
	}
	t.Logf("%v", rep)
}

// TestExploreKVAbsorbDeadline is the same sweep in the deadline shape: an
// unreachable threshold parks every counter op in the accumulator until
// the shard's deadline timer forces the net-delta commit, so the deferred
// ack path — park, timer wakeup, deadline-commit boundary, FASE, absorb
// ack — is what gets crashed at. The enumeration stays deterministic even
// if a slow run folds at plan time instead of at the timer: both paths
// cross the same boundary sequence.
func TestExploreKVAbsorbDeadline(t *testing.T) {
	o := DefaultKVOptions()
	o.Absorb = true
	o.AbsorbThreshold = 1 << 20
	o.AbsorbDeadline = 300 * time.Microsecond
	if testing.Short() {
		o.Ops, o.Keys = 7, 3
	}
	rep, err := ExploreKV(o)
	if err != nil {
		t.Fatalf("ExploreKV(absorb, deadline): %v\nreport: %v", err, rep)
	}
	if rep.Crashes != rep.Sites || rep.Missed != 0 {
		t.Errorf("sweep not exhaustive: %v", rep)
	}
	for _, k := range []Kind{KindAbsorbMerge, KindAbsorbDeadline, KindAbsorbAck} {
		if rep.Kinds[k] == 0 {
			t.Errorf("no %v sites in the deadline-absorbed path: %v", k, rep)
		}
	}
	if rep.Kinds[KindAbsorbThreshold] != 0 {
		t.Errorf("threshold commits with an unreachable threshold: %v", rep)
	}
	t.Logf("%v", rep)
}

// TestExploreKVAbsorbPipeline stacks absorption on the overlapped commit
// protocol: net-delta FASEs are published and settled like any batch, the
// absorb-ack boundary moves into settle, and every site of the combined
// space holds the service contract.
func TestExploreKVAbsorbPipeline(t *testing.T) {
	o := DefaultKVOptions()
	o.Absorb = true
	o.AbsorbThreshold = 1
	o.AbsorbDeadline = time.Second
	o.Pipeline = true
	if testing.Short() {
		o.Ops, o.Keys = 7, 3
	}
	rep, err := ExploreKV(o)
	if err != nil {
		t.Fatalf("ExploreKV(absorb, pipeline): %v\nreport: %v", err, rep)
	}
	if rep.Crashes != rep.Sites || rep.Missed != 0 {
		t.Errorf("sweep not exhaustive: %v", rep)
	}
	for _, k := range []Kind{KindAbsorbMerge, KindAbsorbThreshold, KindAbsorbAck,
		KindPipeEnqueue, KindPipeEpoch, KindAck} {
		if rep.Kinds[k] == 0 {
			t.Errorf("no %v sites in the absorbed pipelined path: %v", k, rep)
		}
	}
	t.Logf("%v", rep)
}

// TestExploreKVRandomAbsorb runs the seeded concurrent mode with
// absorption enabled: concurrent clients mixing puts and private-key
// increments, a small threshold and a short deadline so both commit
// triggers fire under load, crashes landing anywhere in the combined site
// space — every recovered state must satisfy the per-key prefix invariant
// for puts and counters alike.
func TestExploreKVRandomAbsorb(t *testing.T) {
	o := DefaultKVOptions()
	o.Absorb = true
	o.AbsorbThreshold = 2
	o.AbsorbDeadline = 200 * time.Microsecond
	o.Runs = 8
	if testing.Short() {
		o.Runs = 3
	}
	rep, err := ExploreKVRandom(o)
	if err != nil {
		t.Fatalf("ExploreKVRandom(absorb) (reproduce with -faultinject.seed=%d): %v\nreport: %v", rep.Seed, err, rep)
	}
	if rep.Runs != o.Runs || rep.Crashes+rep.Missed != rep.Runs {
		t.Errorf("run accounting broken: %v", rep)
	}
	t.Logf("%v", rep)
}

// TestExploreKVCatchesDroppedDrains is the kv-level negative control: the
// flush-after-ack double must make some crash run's recovery fail the
// service contract.
func TestExploreKVCatchesDroppedDrains(t *testing.T) {
	o := DefaultKVOptions()
	o.Ops, o.Keys = 6, 2
	o.Middleware = DropDrains
	rep, err := ExploreKV(o)
	if err == nil {
		t.Fatalf("dropped drains went undetected: %v", rep)
	}
	t.Logf("caught as expected: %v", err)
}

// TestExploreKVRandom runs the seeded concurrent mode: schedules and crash
// sites drawn from one PCG stream (-faultinject.seed to override), misses
// allowed and tallied, every run verified.
func TestExploreKVRandom(t *testing.T) {
	o := DefaultKVOptions()
	o.Runs = 8
	if testing.Short() {
		o.Runs = 3
	}
	rep, err := ExploreKVRandom(o)
	if err != nil {
		t.Fatalf("ExploreKVRandom (reproduce with -faultinject.seed=%d): %v\nreport: %v", rep.Seed, err, rep)
	}
	if rep.Runs != o.Runs || rep.Crashes+rep.Missed != rep.Runs {
		t.Errorf("run accounting broken: %v", rep)
	}
	t.Logf("%v", rep)
}

// TestExploreKVResize sweeps the resize-at-FASE-end seam: capacity requests
// cycling shrink→grow→shrink are published between ops and applied at the
// next FASE end before its drain, so the shrink's forced evictions are
// enumerated as ordinary write-back sites. A crash at any of them — mid-
// resize, with part of the evicted set persisted — must lose no acked write.
func TestExploreKVResize(t *testing.T) {
	o := DefaultKVOptions()
	o.ResizeEvery = 2
	if testing.Short() {
		o.Ops, o.Keys = 7, 3
	}
	rep, err := ExploreKV(o)
	if err != nil {
		t.Fatalf("ExploreKV(resize): %v\nreport: %v", err, rep)
	}
	if rep.Crashes != rep.Sites || rep.Missed != 0 {
		t.Errorf("sweep not exhaustive: %v", rep)
	}
	base, err := ExploreKV(func() KVOptions {
		b := DefaultKVOptions()
		if testing.Short() {
			b.Ops, b.Keys = 7, 3
		}
		return b
	}())
	if err != nil {
		t.Fatalf("ExploreKV(baseline): %v", err)
	}
	// The shrink to capacity 1 forces evictions the static run never pays,
	// so resizing must widen the site space (new DrainLine boundaries).
	if rep.Sites <= base.Sites {
		t.Errorf("resizing enumerated %d sites, static %d — no resize-driven crash sites",
			rep.Sites, base.Sites)
	}
	t.Logf("resize sweep %v vs static %v", rep, base)
}

// TestExploreKVCheckpoint is the exhaustive sweep for the checkpoint
// pipeline: with per-shard checkpoints on and an explicit checkpoint after
// every second op, the site space gains the begin/serialize-page/publish
// seal/log-truncate boundaries (plus the journal-append write-throughs
// riding inside each FASE) — and every one of them, crashed at and
// recovered from, must lose no acked op. A publish crash must fall back to
// the previous image (or full journal replay), a truncate crash must leave
// the head where the older image still covers it.
func TestExploreKVCheckpoint(t *testing.T) {
	o := DefaultKVOptions()
	o.CheckpointEvery = 2
	if testing.Short() {
		o.Ops, o.Keys = 7, 3
	}
	rep, err := ExploreKV(o)
	if err != nil {
		t.Fatalf("ExploreKV(checkpoint): %v\nreport: %v", err, rep)
	}
	if rep.Crashes != rep.Sites || rep.Missed != 0 {
		t.Errorf("sweep not exhaustive: %v", rep)
	}
	for _, k := range []Kind{KindCkptBegin, KindCkptPage, KindCkptPublish, KindLogTruncate,
		KindUndoRecord, KindDrainLine, KindAck} {
		if rep.Kinds[k] == 0 {
			t.Errorf("no %v sites in the checkpointed group-commit path: %v", k, rep)
		}
	}
	t.Logf("%v", rep)
}

// TestExploreKVCheckpointPipeline stacks checkpointing on the overlapped
// commit protocol: journal seals ride the pipelined FASEs (and roll back
// newest-first with them), explicit checkpoints land at settled points
// between acked ops, and every site of the combined space holds the
// service contract.
func TestExploreKVCheckpointPipeline(t *testing.T) {
	o := DefaultKVOptions()
	o.CheckpointEvery = 2
	o.Pipeline = true
	if testing.Short() {
		o.Ops, o.Keys = 7, 3
	}
	rep, err := ExploreKV(o)
	if err != nil {
		t.Fatalf("ExploreKV(checkpoint, pipeline): %v\nreport: %v", err, rep)
	}
	if rep.Crashes != rep.Sites || rep.Missed != 0 {
		t.Errorf("sweep not exhaustive: %v", rep)
	}
	for _, k := range []Kind{KindCkptBegin, KindCkptPublish, KindLogTruncate,
		KindPipeEnqueue, KindPipeEpoch, KindAck} {
		if rep.Kinds[k] == 0 {
			t.Errorf("no %v sites in the checkpointed pipelined path: %v", k, rep)
		}
	}
	t.Logf("%v", rep)
}

// TestExploreKVRecovery crashes recovery itself: for a spread of serving
// crash shapes, every boundary the recovery crosses — rollbacks, rebuild
// flushes, replay batches, generation installs — gets its own run where
// kv.Recover is cut at exactly that point and a second, clean Recover must
// still converge to the exact acked state. This is the idempotence proof:
// a machine that loses power again while recovering recovers anyway.
func TestExploreKVRecovery(t *testing.T) {
	o := DefaultKVOptions()
	if testing.Short() {
		o.Ops, o.Keys = 7, 3
	}
	rep, err := ExploreKVRecovery(o)
	if err != nil {
		t.Fatalf("ExploreKVRecovery: %v\nreport: %v", err, rep)
	}
	if rep.Crashes != rep.Runs || rep.Missed != 0 {
		t.Errorf("sweep not exhaustive: %v", rep)
	}
	for _, k := range []Kind{KindRecoverReplay, KindRecoverInstall} {
		if rep.Kinds[k] == 0 {
			t.Errorf("no %v sites in the recovery path: %v", k, rep)
		}
	}
	t.Logf("%v", rep)
}

// TestExploreKVRecoveryPipeline runs the same mid-recovery sweep over
// heaps crashed under the overlapped commit protocol, where recovery may
// find two undo logs live (the published batch and its overlapped
// successor) and must roll both back newest-first before the rebuild.
func TestExploreKVRecoveryPipeline(t *testing.T) {
	o := DefaultKVOptions()
	o.Pipeline = true
	if testing.Short() {
		o.Ops, o.Keys = 7, 3
	}
	rep, err := ExploreKVRecovery(o)
	if err != nil {
		t.Fatalf("ExploreKVRecovery(pipeline): %v\nreport: %v", err, rep)
	}
	if rep.Crashes != rep.Runs || rep.Missed != 0 {
		t.Errorf("sweep not exhaustive: %v", rep)
	}
	t.Logf("%v", rep)
}

// TestExploreKVResizePipeline runs the same resize schedule under the
// overlapped commit protocol, where the FASE-end apply point races (in real
// deployments) a draining predecessor epoch: in the synchronous-pipeline
// enumeration every hand-off and epoch boundary around the resize is
// crashed at and recovered from.
func TestExploreKVResizePipeline(t *testing.T) {
	o := DefaultKVOptions()
	o.ResizeEvery = 2
	o.Pipeline = true
	if testing.Short() {
		o.Ops, o.Keys = 7, 3
	}
	rep, err := ExploreKV(o)
	if err != nil {
		t.Fatalf("ExploreKV(resize, pipeline): %v\nreport: %v", err, rep)
	}
	if rep.Crashes != rep.Sites || rep.Missed != 0 {
		t.Errorf("sweep not exhaustive: %v", rep)
	}
	t.Logf("%v", rep)
}
