package faultinject

import (
	"strings"
	"testing"

	"nvmcache/internal/core"
)

// TestExploreAtlasAllPolicies crashes the single-threaded atlas workload
// at every enumerated persistence boundary, once per policy, and demands
// the exact-prefix invariant after each recovery. Eager additionally
// proves the flush-line (per-store write-back) boundary is in the site
// space; the buffering policies prove the drain decomposition is.
func TestExploreAtlasAllPolicies(t *testing.T) {
	for _, kind := range []core.PolicyKind{core.Eager, core.Lazy, core.AtlasTable, core.SoftCacheOnline} {
		t.Run(kind.String(), func(t *testing.T) {
			opt := DefaultAtlasOptions()
			opt.Policy = kind
			if testing.Short() {
				opt.FASEs, opt.Words = 3, 4
			}
			rep, err := ExploreAtlas(opt)
			if err != nil {
				t.Fatalf("ExploreAtlas: %v\nreport: %v", err, rep)
			}
			if rep.Sites == 0 || rep.Crashes != rep.Sites || rep.Missed != 0 {
				t.Fatalf("sweep not exhaustive: %v", rep)
			}
			switch kind {
			case core.Eager:
				if rep.Kinds[KindFlushLine] == 0 {
					t.Errorf("eager sweep has no flush-line sites: %v", rep)
				}
			default:
				if rep.Kinds[KindDrainLine] == 0 {
					t.Errorf("%v sweep has no drain-line sites: %v", kind, rep)
				}
			}
			if rep.Kinds[KindUndoRecord] == 0 || rep.Kinds[KindUndoCommit] == 0 {
				t.Errorf("undo-log boundaries missing from site space: %v", rep)
			}
			t.Logf("%v", rep)
		})
	}
}

// TestExploreAtlasPipeline repeats the exhaustive sweep with the flush
// pipeline stacked above the injection sink: the hand-off (pipe-enqueue)
// and epoch-barrier boundaries must join the site space — per-batch apply
// too, for a policy that actually produces async write-backs — and every
// site must still recover to the exact prefix.
func TestExploreAtlasPipeline(t *testing.T) {
	for _, kind := range []core.PolicyKind{core.Eager, core.SoftCacheOnline} {
		t.Run(kind.String(), func(t *testing.T) {
			opt := DefaultAtlasOptions()
			opt.Policy = kind
			opt.Pipeline = true
			if testing.Short() {
				opt.FASEs, opt.Words = 3, 4
			}
			rep, err := ExploreAtlas(opt)
			if err != nil {
				t.Fatalf("ExploreAtlas(pipeline): %v\nreport: %v", err, rep)
			}
			if rep.Sites == 0 || rep.Crashes != rep.Sites || rep.Missed != 0 {
				t.Fatalf("sweep not exhaustive: %v", rep)
			}
			if rep.Kinds[KindPipeEnqueue] == 0 || rep.Kinds[KindPipeEpoch] == 0 {
				t.Errorf("pipeline boundaries missing from site space: %v", rep)
			}
			if kind == core.Eager && rep.Kinds[KindPipeBatch] == 0 {
				t.Errorf("eager pipeline sweep has no per-batch sites: %v", rep)
			}
			t.Logf("%v", rep)
		})
	}
}

// TestExploreAtlasCatchesDroppedDrains is the engine's negative control: a
// sink double that acknowledges FASE-end drains without performing them
// (commit-before-flush, the classic ordering bug) must be caught by some
// crash site's invariant check. If this test fails, the exploration engine
// is vacuous.
func TestExploreAtlasCatchesDroppedDrains(t *testing.T) {
	opt := DefaultAtlasOptions()
	opt.Middleware = DropDrains
	rep, err := ExploreAtlas(opt)
	if err == nil {
		t.Fatalf("dropped drains went undetected: %v", rep)
	}
	if !strings.Contains(err.Error(), "invariant violated") {
		t.Fatalf("unexpected failure shape (want an invariant violation): %v", err)
	}
	t.Logf("caught as expected: %v", err)
}

// TestAtlasEnumerationDeterministic pins the property exhaustive mode
// rests on: two counting runs of the same workload enumerate the same
// boundary sequence.
func TestAtlasEnumerationDeterministic(t *testing.T) {
	opt := DefaultAtlasOptions()
	a, b := NewCounting(), NewCounting()
	if _, _, err := atlasRun(opt, a); err != nil {
		t.Fatal(err)
	}
	if _, _, err := atlasRun(opt, b); err != nil {
		t.Fatal(err)
	}
	if a.Sites() != b.Sites() {
		t.Fatalf("site counts differ across identical runs: %d vs %d", a.Sites(), b.Sites())
	}
	ka, kb := a.Kinds(), b.Kinds()
	for k, n := range ka {
		if kb[k] != n {
			t.Fatalf("kind census differs: %v vs %v", ka, kb)
		}
	}
}
