package faultinject

import (
	"errors"
	"testing"
	"time"

	"nvmcache/internal/core"
	"nvmcache/internal/kv"
)

// absorbShape decodes the fuzzer's shape byte into an absorption
// configuration — one of the two shapes a blocking serial stream can
// drive. Threshold 1 folds every counter op into its own commit
// (AbsorbThresholdCommit sites); the high bit flips to the
// deadline-driven shape — a threshold that never fires and a deadline
// short enough that the shard's timer commits each parked op
// (AbsorbDeadlineCommit sites). Thresholds between the two are
// unreachable here: parked acks are deferred until the accumulator
// commits, so a serial client blocks on its first parked op and a >1
// threshold just waits out the deadline (the randomized concurrent mode
// covers multi-op windows).
func absorbShape(b byte) KVOptions {
	o := KVOptions{
		Shards:          2,
		Keys:            4,
		Policy:          core.SoftCacheOnline,
		Config:          core.DefaultConfig(),
		Absorb:          true,
		AbsorbThreshold: 1,
		AbsorbDeadline:  time.Second,
	}
	if b&0x80 != 0 {
		o.AbsorbThreshold = 1 << 20
		o.AbsorbDeadline = 300 * time.Microsecond
	}
	return o
}

// bytesToKVOps maps fuzz bytes onto a PUT/DEL/INCR/DECR stream over a
// 4-key space: two bits pick the verb, two the key — so even random
// inputs overwrite, delete, and fold counters on the same keys, which is
// where absorption (and its undo logging) has to work hardest. Length is
// capped because every op is a full group-commit round trip.
func bytesToKVOps(data []byte) []kvOp {
	const maxOps = 24
	if len(data) > maxOps {
		data = data[:maxOps]
	}
	ops := make([]kvOp, len(data))
	for i, b := range data {
		op := kvOp{key: uint64(b>>2) % 4}
		switch b & 0x03 {
		case 0:
			op.kind, op.val = kvPut, 0xF022_0000+uint64(i)+1
		case 1:
			op.kind = kvDel
		case 2:
			op.kind, op.val = kvIncr, uint64(b>>4)+1
		case 3:
			op.kind, op.val = kvDecr, uint64(b>>4)+1
		}
		ops[i] = op
	}
	return ops
}

// FuzzAbsorb fuzzes the absorption layer's crash contract: decode an
// arbitrary PUT/DEL/INCR/DECR stream and an absorption shape, enumerate
// the stream's injection sites with a counting run, crash one armed run
// at a fuzz-chosen site, recover, and hold the recovered store to the
// exact-state oracle (applyOps) — every acked op present with its exact
// value, the nacked op fully rolled back (or, at an ack boundary, fully
// applied). The differential oracle is what makes this a fuzz target
// rather than a stress test: any stream whose net-delta commit, undo
// replay, or ack accounting disagrees with the serial model fails loudly.
// Seed corpus in testdata/fuzz/FuzzAbsorb.
func FuzzAbsorb(f *testing.F) {
	f.Add(byte(0), uint16(0), []byte{})
	f.Add(byte(0), uint16(3), []byte{0, 4, 8, 12, 0})                 // puts cycling all keys
	f.Add(byte(1), uint16(7), []byte{6, 7})                           // incr/decr net-null pair on key 1
	f.Add(byte(0x80), uint16(12), []byte{2, 6, 10, 14, 2, 6, 10, 14}) // counter-only, deadline shape
	f.Add(byte(2), uint16(100), []byte{0, 2, 5, 3, 6, 1, 0, 7, 2, 2, 9, 14, 4, 3})
	f.Fuzz(func(t *testing.T, shape byte, site uint16, stream []byte) {
		o := absorbShape(shape).withDefaults()
		ops := bytesToKVOps(stream)
		if len(ops) == 0 {
			return
		}
		counter := NewCounting()
		_, acked, err := kvSeqRun(o, ops, counter)
		if err != nil {
			t.Fatalf("counting run: %v", err)
		}
		if acked != len(ops) {
			t.Fatalf("counting run acked %d/%d ops", acked, len(ops))
		}
		n := counter.Sites()
		if n == 0 {
			return
		}
		target := int(site) % n
		inj := NewArmed(target)
		h, acked, err := kvSeqRun(o, ops, inj)
		if !errors.Is(err, errInjected) {
			t.Fatalf("site %d of %d never fired (err %v); enumeration not deterministic?", target, n, err)
		}
		crash, _ := inj.Fired()
		if _, _, err := recoverAndVerifyKV(o, h, ops, acked, crash); err != nil {
			t.Fatalf("contract violated after %v (acked %d/%d ops): %v", crash, acked, len(ops), err)
		}
	})
}

// ckptShape decodes the fuzzer's shape byte into a checkpoint
// configuration: the low bits pick the explicit-checkpoint cadence (every
// 1st to 5th op — cadence 1 checkpoints after every single commit, so the
// journal suffix is always one entry; cadence 5 leaves long suffixes and
// multiple generations per image), the high bit stacks the overlapped
// commit pipeline underneath.
func ckptShape(b byte) KVOptions {
	o := KVOptions{
		Shards: 2,
		Keys:   4,
		Policy: core.SoftCacheOnline,
		Config: core.DefaultConfig(),
	}
	o.CheckpointEvery = int(b&0x07)%5 + 1
	if b&0x80 != 0 {
		o.Pipeline = true
	}
	return o
}

// FuzzCheckpointRecover fuzzes the checkpoint/recovery crash contract
// differentially against the serial model: decode an arbitrary
// PUT/DEL/INCR/DECR stream, a checkpoint cadence, a fuzz-chosen serving
// crash site, and (when rsite is nonzero) a fuzz-chosen recovery crash
// site. The serving run crashes at the chosen boundary — possibly mid-
// checkpoint, leaving a torn or half-published image — then, for the
// recovery-crash half of the space, the first kv.Recover is itself cut at
// the chosen recovery boundary and must leave the heap quiesced. The final
// clean Recover is held to the exact-state oracle (applyOps): every acked
// op present with its exact value, the nacked op rolled back or (ack
// boundary) fully applied, regardless of which image or journal suffix the
// recovery had to fall back to. Seed corpus in
// testdata/fuzz/FuzzCheckpointRecover.
func FuzzCheckpointRecover(f *testing.F) {
	f.Add(byte(1), uint16(0), uint16(0), []byte{})
	f.Add(byte(1), uint16(9), uint16(0), []byte{0, 4, 8, 12, 0, 4})       // cadence 2, serving crash only
	f.Add(byte(2), uint16(60), uint16(3), []byte{0, 1, 4, 5, 8, 2, 6, 0}) // crash the recovery too
	f.Add(byte(0x81), uint16(120), uint16(7), []byte{2, 6, 10, 14, 0, 4, 8, 12})
	f.Add(byte(4), uint16(33), uint16(1), []byte{0, 4, 0, 4, 1, 5, 0, 4, 0, 4, 3, 7})
	f.Fuzz(func(t *testing.T, shape byte, site, rsite uint16, stream []byte) {
		o := ckptShape(shape).withDefaults()
		ops := bytesToKVOps(stream)
		if len(ops) == 0 {
			return
		}
		counter := NewCounting()
		_, acked, err := kvSeqRun(o, ops, counter)
		if err != nil {
			t.Fatalf("counting run: %v", err)
		}
		if acked != len(ops) {
			t.Fatalf("counting run acked %d/%d ops", acked, len(ops))
		}
		n := counter.Sites()
		if n == 0 {
			return
		}
		target := int(site) % n
		h, acked, crash, err := genCrashedKVHeap(o, ops, target)
		if err != nil {
			t.Fatalf("armed run: %v", err)
		}
		if rsite != 0 {
			// Enumerate the recovery's own boundaries (this consumes the
			// heap — the counting Recover repairs it), regenerate the
			// identical crash, and cut the recovery at the chosen site.
			rcount := NewCounting()
			rcount.Enable()
			st, _, err := kv.Recover(h, o.storeOptions(rcount))
			rcount.Disable()
			if err != nil {
				t.Fatalf("counting recovery after %v: %v", crash, err)
			}
			if err := st.Close(); err != nil {
				t.Fatalf("close after counting recovery: %v", err)
			}
			rn := rcount.Sites()
			if rn == 0 {
				return
			}
			if h, _, _, err = genCrashedKVHeap(o, ops, target); err != nil {
				t.Fatalf("regenerate crashed heap: %v", err)
			}
			rtarget := int(rsite) % rn
			rinj := NewArmed(rtarget)
			rinj.Enable()
			_, _, rerr := kv.Recover(h, o.storeOptions(rinj))
			rinj.Disable()
			if !errors.Is(rerr, kv.ErrCrashed) {
				t.Fatalf("recovery site %d of %d never fired (err %v); recovery not deterministic?", rtarget, rn, rerr)
			}
		}
		if _, _, err := recoverAndVerifyKV(o, h, ops, acked, crash); err != nil {
			t.Fatalf("contract violated after %v (acked %d/%d ops): %v", crash, acked, len(ops), err)
		}
	})
}
