package faultinject

import (
	"errors"
	"fmt"

	"nvmcache/internal/atlas"
	"nvmcache/internal/core"
	"nvmcache/internal/pmem"
)

// AtlasOptions shapes the single-threaded atlas exploration workload: a
// fixed sequence of FASEs, each overwriting one shared generation word and
// writing Words fresh private words. The workload is fully deterministic —
// the bump allocator reproduces the identical heap layout every run — so
// exhaustive mode can guarantee that site k of the enumeration fires on
// run k.
type AtlasOptions struct {
	// Policy and Config select the persistence technique under test.
	Policy core.PolicyKind
	Config core.Config
	// FASEs is how many failure-atomic sections the workload commits.
	FASEs int
	// Words is the number of private words each FASE stores.
	Words int
	// Middleware, when non-nil, wraps the sink between the policy and the
	// injection points (policy → middleware → injector → pmem). Negative
	// tests install DropDrains here to prove the engine catches a sink
	// that acknowledges drains it never performed.
	Middleware func(core.FlushSink) core.FlushSink
	// Pipeline additionally stacks a flush pipeline above the injection
	// sink (policy → pipeline → middleware → injector → pmem), adding the
	// hand-off, per-batch and epoch boundaries to the site space. The
	// pipeline runs in synchronous mode so enumeration stays deterministic.
	Pipeline bool
}

// DefaultAtlasOptions explores the paper's adaptive policy on a workload
// big enough to exercise cross-FASE overwrites but small enough that the
// exhaustive sweep stays cheap.
func DefaultAtlasOptions() AtlasOptions {
	return AtlasOptions{Policy: core.SoftCacheOnline, Config: core.DefaultConfig(), FASEs: 6, Words: 8}
}

func (o AtlasOptions) withDefaults() AtlasOptions {
	if o.FASEs <= 0 {
		o.FASEs = 6
	}
	if o.Words <= 0 {
		o.Words = 8
	}
	if o.Config == (core.Config{}) {
		// A zero Config would give the cache policies a zero-sized cache;
		// Eager/Lazy ignore it either way.
		o.Config = core.DefaultConfig()
	}
	return o
}

// wordValue is FASE f's value for private word w — distinct per (f, w) and
// never zero, so a missing or torn word is unmistakable.
func wordValue(f, w int) uint64 {
	return uint64(f)*1_000_003 + uint64(w)*7 + 0xA5A5
}

const atlasHeapBytes = 1 << 19

// errInjected marks a run that ended in a fired site (the expected way).
var errInjected = errors.New("faultinject: run crashed")

// atlasRun performs one deterministic workload run under inj. It returns
// the heap, the number of FASEs whose FASEEnd returned before the crash
// (all of them if no site fired), and errInjected if a site fired.
func atlasRun(opt AtlasOptions, inj *Injector) (h *pmem.Heap, completed int, err error) {
	h = pmem.New(atlasHeapBytes)
	dataBase, err := h.AllocLines(uint64(1+opt.FASEs*opt.Words) * 8)
	if err != nil {
		return nil, 0, fmt.Errorf("faultinject: alloc data region: %w", err)
	}
	h.SetRoot(dataBase)
	rt := atlas.NewRuntime(h, atlas.Options{
		Policy:       opt.Policy,
		Config:       opt.Config,
		LogEntries:   2 * (opt.Words + 2),
		DisableTrace: true,
		WrapSink: func(id int32, s core.FlushSink) core.FlushSink {
			s = inj.WrapSink(id, s)
			if opt.Middleware != nil {
				s = opt.Middleware(s)
			}
			return s
		},
		UndoHook: inj.UndoHook(),
		Pipeline: pipelineConfig(opt.Pipeline, inj),
	})
	th, err := rt.NewThread()
	if err != nil {
		return nil, 0, fmt.Errorf("faultinject: new thread: %w", err)
	}
	// Only the serving path is in the site space: enumeration starts after
	// setup so every site is one the replay deterministically revisits.
	inj.Enable()
	defer inj.Disable()
	err = func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				if !IsCrash(r) {
					panic(r)
				}
				err = errInjected
			}
		}()
		for f := 1; f <= opt.FASEs; f++ {
			th.FASEBegin()
			for w := 0; w < opt.Words; w++ {
				addr := dataBase + uint64(1+(f-1)*opt.Words+w)*8
				th.Store64(addr, wordValue(f, w))
			}
			th.Store64(dataBase, uint64(f)) // shared generation word
			th.FASEEnd()
			completed = f
		}
		return nil
	}()
	// The runtime is deliberately not closed: after a mid-FASE crash the
	// policy still holds pending lines, and a power failure gives it no
	// chance to drain them. Close would.
	return h, completed, err
}

// verifyAtlasPrefix checks that the post-recovery persistent state is
// exactly the prefix of the first `completed` FASEs: the generation word
// matches, every committed FASE's private words are intact, every later
// word is untouched, the heap is self-consistent, and no dirty lines
// linger. It returns the number of checks that passed.
func verifyAtlasPrefix(h *pmem.Heap, opt AtlasOptions, completed int) (int, error) {
	checks := 0
	dataBase := h.Root()
	if g := h.ReadUint64(dataBase); g != uint64(completed) {
		return checks, fmt.Errorf("generation word = %d, want %d complete FASEs", g, completed)
	}
	checks++
	for f := 1; f <= opt.FASEs; f++ {
		for w := 0; w < opt.Words; w++ {
			addr := dataBase + uint64(1+(f-1)*opt.Words+w)*8
			want := uint64(0)
			if f <= completed {
				want = wordValue(f, w)
			}
			if got := h.ReadUint64(addr); got != want {
				return checks, fmt.Errorf("FASE %d word %d = %#x, want %#x (prefix of %d FASEs)",
					f, w, got, want, completed)
			}
			checks++
		}
	}
	if err := h.CheckConsistency(); err != nil {
		return checks, err
	}
	checks++
	if n := h.DirtyCount(); n != 0 {
		return checks, fmt.Errorf("%d dirty lines after recovery", n)
	}
	checks++
	return checks, nil
}

// ExploreAtlas exhaustively explores every injection site of the atlas
// workload: one counting run to enumerate the boundaries, then one crash
// run per site, each followed by atlas.Recover and the prefix invariant.
// The first violated invariant aborts the sweep with an error naming the
// site and boundary kind.
func ExploreAtlas(opt AtlasOptions) (Report, error) {
	opt = opt.withDefaults()
	counter := NewCounting()
	_, completed, err := atlasRun(opt, counter)
	if err != nil {
		return Report{}, fmt.Errorf("faultinject: counting run: %w", err)
	}
	if completed != opt.FASEs {
		return Report{}, fmt.Errorf("faultinject: counting run completed %d/%d FASEs", completed, opt.FASEs)
	}
	rep := Report{Sites: counter.Sites(), Kinds: counter.Kinds()}
	for site := 0; site < rep.Sites; site++ {
		inj := NewArmed(site)
		h, completed, err := atlasRun(opt, inj)
		if !errors.Is(err, errInjected) {
			if err != nil {
				return rep, fmt.Errorf("faultinject: run %d: %w", site, err)
			}
			return rep, fmt.Errorf("faultinject: site %d never fired (%d sites enumerated; workload not deterministic?)",
				site, rep.Sites)
		}
		crash, _ := inj.Fired()
		h.Crash()
		rrep, err := atlas.Recover(h)
		if err != nil {
			return rep, fmt.Errorf("faultinject: recover after %v: %w", crash, err)
		}
		rep.FASEsRolledBack += rrep.FASEsRolledBack
		rep.WordsRestored += rrep.WordsRestored
		checks, err := verifyAtlasPrefix(h, opt, completed)
		rep.Checks += checks
		if err != nil {
			return rep, fmt.Errorf("faultinject: invariant violated after %v: %w", crash, err)
		}
		rep.Runs++
		rep.Crashes++
	}
	return rep, nil
}
