package faultinject

import (
	"fmt"
	"sort"
	"strings"
)

// Report summarizes one exploration sweep: how many crash points the
// counting run enumerated, how many crash runs were executed, and how many
// recovery-invariant checks they passed. A sweep that returns a nil error
// explored everything it set out to with every check passing; the Report
// is evidence of how much that covered.
type Report struct {
	// Sites is the number of injection sites the counting run enumerated.
	Sites int
	// Runs is the number of crash runs executed (one per explored site in
	// exhaustive mode).
	Runs int
	// Crashes counts runs whose armed site actually fired.
	Crashes int
	// Missed counts runs whose armed site was never reached — possible
	// only under randomized concurrent schedules, where batching
	// nondeterminism reshapes the site space run to run. Missed runs still
	// complete and are still verified, just without a crash.
	Missed int
	// Checks is the total number of recovery-invariant checks passed
	// (acked-value lookups, rollback completeness, heap consistency,
	// dirty-state emptiness).
	Checks int
	// FASEsRolledBack and WordsRestored aggregate the recovery work the
	// crash runs triggered, straight from atlas.RecoveryReport.
	FASEsRolledBack int
	WordsRestored   int
	// Kinds is the counting run's census of sites per boundary kind.
	Kinds map[Kind]int
	// Seed is the root seed of a randomized sweep (0 for exhaustive).
	Seed uint64
}

// String renders the sweep on one line plus a kind census.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d sites, %d runs (%d crashed, %d missed), %d checks passed, %d FASEs rolled back (%d words)",
		r.Sites, r.Runs, r.Crashes, r.Missed, r.Checks, r.FASEsRolledBack, r.WordsRestored)
	if r.Seed != 0 {
		fmt.Fprintf(&b, ", seed %d", r.Seed)
	}
	if len(r.Kinds) > 0 {
		kinds := make([]Kind, 0, len(r.Kinds))
		for k := range r.Kinds {
			kinds = append(kinds, k)
		}
		sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
		b.WriteString("\n  sites by kind:")
		for _, k := range kinds {
			fmt.Fprintf(&b, " %s=%d", k, r.Kinds[k])
		}
	}
	return b.String()
}
