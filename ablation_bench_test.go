package nvmcache_test

// Ablation benchmarks for the design choices the paper argues for:
// clflush vs clwb (Section II-A), full associativity vs Atlas's direct
// mapping at equal capacity (Section II-B), the 50-line capacity bound
// (Section III-C), the burst length, per-thread vs grouped MRC analysis
// (Section III-C's future-work extension), infinite vs periodic
// hibernation, and the asymptotic cost of timescale reuse vs exact reuse
// distance (Section III-A). Each reports its finding as a custom metric.

import (
	"nvmcache/internal/testutil"
	"testing"

	"nvmcache/internal/core"
	"nvmcache/internal/harness"
	"nvmcache/internal/locality"
	"nvmcache/internal/trace"
)

// BenchmarkAblationClflushVsClwb quantifies the indirect cost of flushing
// with invalidation: Atlas on water-spatial pays a re-miss on every line
// it conflicts out; clwb would not. The paper keeps clflush for
// correctness ("clwb may cause other threads to access a stale value").
func BenchmarkAblationClflushVsClwb(b *testing.B) {
	w, err := harness.WorkloadByName(harness.Workloads(), "water-spatial")
	if err != nil {
		b.Fatal(err)
	}
	var ratio float64
	for i := 0; i < b.N; i++ {
		opt := benchOpt()
		clflush, err := harness.Run(w, core.AtlasTable, opt)
		if err != nil {
			b.Fatal(err)
		}
		opt.UseCLWB = true
		clwb, err := harness.Run(w, core.AtlasTable, opt)
		if err != nil {
			b.Fatal(err)
		}
		ratio = clflush.Cycles / clwb.Cycles
	}
	b.ReportMetric(ratio, "clflush/clwb-x")
}

// BenchmarkAblationAssociativity holds capacity fixed at the selected size
// and varies only the organization: Atlas's direct-mapped table vs the
// paper's fully associative LRU cache. The gap is the part of SC's win
// that capacity alone cannot explain. MDB is the right subject: its COW
// page addresses are scattered, so lines collide in a direct-mapped table
// even when it is as large as the LRU cache (the SPLASH2 generators use
// contiguous phase lines, which never collide at equal capacity).
func BenchmarkAblationAssociativity(b *testing.B) {
	w, err := harness.WorkloadByName(harness.Workloads(), "mdb")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := w.Trace(1.0/2048, 1, 42)
	if err != nil {
		b.Fatal(err)
	}
	size, err := harness.OfflineSize(w, benchOpt())
	if err != nil {
		b.Fatal(err)
	}
	var directRatio, lruRatio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		cfg.AtlasTableSize = size // direct-mapped at SC's capacity
		directRatio = core.FlushRatio(core.AtlasTable, cfg, tr)
		cfg.PresetSize = size
		lruRatio = core.FlushRatio(core.SoftCacheOffline, cfg, tr)
	}
	b.ReportMetric(directRatio/lruRatio, "direct/lru-flush-x")
}

// BenchmarkAblationCapacityBound compares the paper's 50-line maximum with
// an effectively unbounded cache: the unbounded cache flushes less but
// pays the FASE-end drain stall the bound exists to limit.
func BenchmarkAblationCapacityBound(b *testing.B) {
	w, err := harness.WorkloadByName(harness.Workloads(), "mdb")
	if err != nil {
		b.Fatal(err)
	}
	var stallRatio float64
	for i := 0; i < b.N; i++ {
		opt := benchOpt()
		bounded, err := harness.Run(w, core.SoftCacheOffline, opt)
		if err != nil {
			b.Fatal(err)
		}
		opt.PresetSize = 4096 // no practical bound
		unbounded, err := harness.Run(w, core.SoftCacheOffline, opt)
		if err != nil {
			b.Fatal(err)
		}
		stallRatio = unbounded.Stats.DrainStall / (bounded.Stats.DrainStall + 1)
	}
	b.ReportMetric(stallRatio, "unbounded/bounded-drain-stall-x")
}

// BenchmarkAblationBurstLength sweeps the sampling burst: too short misses
// the widest working set's cross-pass reuse (selecting a useless size),
// long enough finds the knee, longer only adds analysis cost.
func BenchmarkAblationBurstLength(b *testing.B) {
	w, err := harness.WorkloadByName(harness.Workloads(), "water-nsquared")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := w.Trace(1.0/2048, 1, 42)
	if err != nil {
		b.Fatal(err)
	}
	chosen := map[int]int{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, burst := range []int{128, 1024, 8192} {
			cfg := core.DefaultConfig()
			cfg.BurstLength = burst
			p := core.NewPolicy(core.SoftCacheOnline, cfg, core.NewCountingSink(nil))
			core.RunSeq(p, tr.Threads[0])
			chosen[burst] = p.(core.SizeReporter).AdaptReport().ChosenSize
		}
	}
	b.ReportMetric(float64(chosen[128]), "chosen@128")
	b.ReportMetric(float64(chosen[1024]), "chosen@1024")
	b.ReportMetric(float64(chosen[8192]), "chosen@8192")
}

// BenchmarkAblationGroupedMRC compares per-thread MRC analysis with the
// paper's future-work thread grouping: one leader analyzes, the group
// adopts, and the total sampled volume drops by the thread count while
// the flush ratios stay equivalent for locality-homogeneous threads.
func BenchmarkAblationGroupedMRC(b *testing.B) {
	const threads = 8
	seqs := make([]*trace.ThreadSeq, threads)
	for i := range seqs {
		bt := trace.NewBuilder(int32(i))
		for f := 0; f < 30; f++ {
			bt.Begin()
			for pass := 0; pass < 20; pass++ {
				for l := 0; l < 20; l++ {
					bt.Store(trace.LineAddr(l))
				}
			}
			bt.End()
		}
		seqs[i] = bt.Finish()
	}
	var perThread, grouped int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		cfg.BurstLength = 600
		perThread, grouped = 0, 0
		for t := 0; t < threads; t++ {
			p := core.NewPolicy(core.SoftCacheOnline, cfg, core.NewCountingSink(nil))
			core.RunSeq(p, seqs[t])
			perThread += p.(core.SizeReporter).AdaptReport().AnalyzedWrites
		}
		flushers := make([]core.FlushSink, threads)
		for t := range flushers {
			flushers[t] = core.NewCountingSink(nil)
		}
		policies := core.NewGroupedPolicies(cfg, flushers)
		for t, p := range policies {
			core.RunSeq(p, seqs[t])
			grouped += p.(core.SizeReporter).AdaptReport().AnalyzedWrites
		}
	}
	b.ReportMetric(float64(perThread)/float64(grouped), "analysis-saved-x")
}

// BenchmarkAblationHibernation runs a workload whose working set grows
// mid-run: the paper's infinite hibernation keeps the first burst's
// choice; periodic re-sampling re-adapts and recovers the combining.
func BenchmarkAblationHibernation(b *testing.B) {
	bt := trace.NewBuilder(0)
	for f := 0; f < 40; f++ {
		ws := 6
		if f >= 20 {
			ws = 30 // the program's locality shifts
		}
		bt.Begin()
		for pass := 0; pass < 40; pass++ {
			for l := 0; l < ws; l++ {
				bt.Store(trace.LineAddr(1000*uint64(f%2) + uint64(l)))
			}
		}
		bt.End()
	}
	seq := bt.Finish()
	var once, periodic float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		cfg.BurstLength = 480
		cf := core.NewCountingSink(nil)
		core.RunSeq(core.NewPolicy(core.SoftCacheOnline, cfg, cf), seq)
		once = float64(cf.Stats().Total()) / float64(seq.NumWrites())

		cfg.Hibernation = 4000 // re-sample periodically
		cf2 := core.NewCountingSink(nil)
		core.RunSeq(core.NewPolicy(core.SoftCacheOnline, cfg, cf2), seq)
		periodic = float64(cf2.Stats().Total()) / float64(seq.NumWrites())
	}
	b.ReportMetric(once/periodic, "once/periodic-flush-x")
}

// BenchmarkAblationTimescaleVsReuseDistance measures the cost gap the
// paper's Section III-A argues from: the linear-time timescale analysis
// vs the O(n log n) exact reuse-distance measurement, on the same trace.
func BenchmarkAblationTimescaleVsReuseDistance(b *testing.B) {
	rng := testutil.Rand(b, 9)
	seq := make([]uint64, 1<<19)
	for i := range seq {
		seq[i] = uint64(rng.Intn(1 << 14))
	}
	b.Run("timescale-linear", func(b *testing.B) {
		b.SetBytes(int64(8 * len(seq)))
		for i := 0; i < b.N; i++ {
			locality.MRCFromReuse(locality.ReuseAll(seq), 50)
		}
	})
	b.Run("reuse-distance-nlogn", func(b *testing.B) {
		b.SetBytes(int64(8 * len(seq)))
		for i := 0; i < b.N; i++ {
			locality.ReuseDistance(seq).MRC(50)
		}
	})
}
