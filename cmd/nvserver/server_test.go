package main

import (
	"strings"
	"testing"
	"time"

	"nvmcache/internal/kv"
	"nvmcache/internal/pmem"
)

func TestProtocolEndToEnd(t *testing.T) {
	opts := kv.DefaultOptions()
	opts.Shards = 2
	opts.MaxDelay = time.Millisecond
	h := pmem.New(int(kv.RecommendedHeapBytes(opts)))
	st, err := kv.Open(h, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := listen(st)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := dialClient(srv.ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	step := func(cmd, want string) {
		t.Helper()
		got, err := cl.do(cmd)
		if err != nil {
			t.Fatalf("%s: %v", cmd, err)
		}
		if got != want {
			t.Fatalf("%s: got %q, want %q", cmd, got, want)
		}
	}
	step("PUT 1 100", "OK")
	step("GET 1", "VAL 100")
	step("GET 2", "NIL")
	step("PUT 18446744073709551615 7", "OK") // max uint64 key
	step("GET 18446744073709551615", "VAL 7")
	step("DEL 1", "OK")
	step("DEL 1", "NIL")
	step("GET 1", "NIL")

	if got, _ := cl.do("PUT 1"); !strings.HasPrefix(got, "ERR usage: PUT") {
		t.Fatalf("arity error: %q", got)
	}
	if got, _ := cl.do("PUT x y"); !strings.HasPrefix(got, "ERR usage: PUT") {
		t.Fatalf("parse error: %q", got)
	}
	if got, _ := cl.do("FROB 1"); !strings.HasPrefix(got, "ERR unknown command") {
		t.Fatalf("unknown command: %q", got)
	}

	lines, err := cl.doMulti("STATS", "END")
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != opts.Shards+2 {
		t.Fatalf("STATS: %d lines, want %d shard lines + total + stripes", len(lines), opts.Shards+2)
	}
	for i := 0; i < opts.Shards; i++ {
		if !strings.HasPrefix(lines[i], "shard=") || !strings.Contains(lines[i], "flush_ratio=") {
			t.Fatalf("STATS shard line %q", lines[i])
		}
	}
	if !strings.HasPrefix(lines[opts.Shards], "total ops=4") { // 2 puts + 2 dels committed
		t.Fatalf("STATS total line %q", lines[opts.Shards])
	}
	if !strings.HasPrefix(lines[opts.Shards+1], "stripes=") || !strings.Contains(lines[opts.Shards+1], "contention=") {
		t.Fatalf("STATS stripes line %q", lines[opts.Shards+1])
	}

	step("QUIT", "BYE")
	if _, err := cl.do("GET 2"); err == nil {
		t.Fatal("connection survived QUIT")
	}
	if err := srv.shutdown(); err != nil {
		t.Fatal(err)
	}
	// The drained store still serves direct reads.
	if v, ok, err := st.Get(18446744073709551615); err != nil || !ok || v != 7 {
		t.Fatalf("Get after shutdown = %d,%v,%v", v, ok, err)
	}
}

// TestSelfTestSmoke runs the full crash/recovery self-test at a small scale.
func TestSelfTestSmoke(t *testing.T) {
	opts := kv.DefaultOptions()
	opts.Shards = 2
	opts.MaxDelay = time.Millisecond
	if err := runSelfTest(opts, 2, 100, 42, false); err != nil {
		t.Fatal(err)
	}
}

// TestSelfTestExhaustive runs phase C too: the full crash-point
// exploration behind -selftest -exhaustive.
func TestSelfTestExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration sweeps run in internal/faultinject; skip the cmd wrapper in -short")
	}
	opts := kv.DefaultOptions()
	opts.Shards = 2
	opts.MaxDelay = time.Millisecond
	if err := runSelfTest(opts, 2, 100, 42, true); err != nil {
		t.Fatal(err)
	}
}
