package main

import (
	"testing"
	"time"

	"nvmcache/internal/kv"
)

// The protocol end-to-end tests live in internal/server (the server moved
// there so internal/loadgen can self-host it); what stays here is the
// self-test entry point the -selftest flag runs.

// TestSelfTestSmoke runs the full crash/recovery self-test at a small scale.
func TestSelfTestSmoke(t *testing.T) {
	opts := kv.DefaultOptions()
	opts.Shards = 2
	opts.MaxDelay = time.Millisecond
	if err := runSelfTest(opts, 2, 100, 42, false); err != nil {
		t.Fatal(err)
	}
}

// TestSelfTestExhaustive runs phase C too: the full crash-point
// exploration behind -selftest -exhaustive.
func TestSelfTestExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration sweeps run in internal/faultinject; skip the cmd wrapper in -short")
	}
	opts := kv.DefaultOptions()
	opts.Shards = 2
	opts.MaxDelay = time.Millisecond
	if err := runSelfTest(opts, 2, 100, 42, true); err != nil {
		t.Fatal(err)
	}
}
