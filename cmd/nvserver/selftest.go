package main

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nvmcache/internal/faultinject"
	"nvmcache/internal/kv"
	"nvmcache/internal/nvclient"
	"nvmcache/internal/pmem"
	"nvmcache/internal/server"
)

// runSelfTest exercises the whole service contract end to end, over real
// TCP connections:
//
// Phase A opens a group-committing store, runs `clients` concurrent
// closed-loop clients issuing PUTs through the line protocol, and crashes
// the NVRAM heap once about half the workload has been acked. It then
// recovers the heap, serves it again, and verifies through the protocol
// that every acked write survived and every write that was refused with the
// crash error is absent (the mid-FASE batch rolled back, not half-applied).
// It also checks snapshot consistency: views pinned on the recovered store
// stay frozen while new writes commit over them.
//
// Phase B replays the same workload on a fresh heap with group commit
// disabled (batch=1, one FASE per operation) and compares flush ratios:
// group commit must flush strictly less per committed operation, or the
// whole point of the batching writer is lost and the self-test fails.
func runSelfTest(opts kv.Options, clients, ops int, seed uint64, exhaustive bool) error {
	if opts.MaxBatch <= 1 {
		return fmt.Errorf("-selftest needs -batch > 1 to compare against the per-op baseline")
	}
	fmt.Printf("selftest: phase A: %d clients x %d PUTs, group commit (batch<=%d, delay<=%v), crash at ~50%% acked\n",
		clients, ops, opts.MaxBatch, opts.MaxDelay)

	// The failure is armed at the 50% mark and strikes *inside* the next
	// commit FASE — after the batch's stores, before the commit — so the
	// recovery below must actually roll an interrupted batch back, not just
	// reattach a cleanly parked heap.
	var armed atomic.Bool
	opts.CrashBeforeCommit = func(shard, batch, size int) bool { return armed.Load() }
	h := pmem.New(int(kv.RecommendedHeapBytes(opts)))
	st, err := kv.Open(h, opts)
	if err != nil {
		return err
	}
	srv, err := listen(st)
	if err != nil {
		return err
	}

	acked := make(map[uint64]uint64, clients*ops) // OK reply: must survive the crash
	nacked := make(map[uint64]struct{})           // crash-refused: must be rolled back
	var mu sync.Mutex
	var ackedN atomic.Int64

	// The saboteur: pull the plug once half the workload is durable.
	go func() {
		target := int64(clients * ops / 2)
		for ackedN.Load() < target {
			time.Sleep(time.Millisecond)
		}
		armed.Store(true)
	}()

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c uint64) {
			defer wg.Done()
			cl, err := nvclient.Dial(srv.Addr().String())
			if err != nil {
				return
			}
			defer cl.Close()
			for i := uint64(0); i < uint64(ops); i++ {
				k := c<<32 | i
				v := mix(k, seed)
				reply, err := cl.Do(fmt.Sprintf("PUT %d %d", k, v))
				if err != nil {
					return // connection torn down: op outcome unknown, claim nothing
				}
				mu.Lock()
				switch {
				case reply == "OK":
					acked[k] = v
					ackedN.Add(1)
				case strings.Contains(reply, "crashed"):
					nacked[k] = struct{}{}
				}
				mu.Unlock()
				if reply != "OK" {
					return
				}
			}
		}(uint64(c))
	}
	wg.Wait()
	select {
	case <-st.Crashed():
	case <-time.After(30 * time.Second):
		return fmt.Errorf("crash never took effect")
	}
	armed.Store(false) // disarm: the recovered store must not crash again
	srv.Shutdown()     // network teardown; the crashed store itself reports ErrCrashed
	statsA := kv.Totals(st.Stats())
	fmt.Printf("selftest: crashed with %d acked, %d crash-refused, %d committed batches (avg %.2f ops)\n",
		len(acked), len(nacked), statsA.Batches, statsA.AvgBatch())
	if len(acked) == 0 {
		return fmt.Errorf("no writes acked before the crash")
	}

	// Recover the same heap and serve it again.
	st2, rep, err := kv.Recover(h, opts)
	if err != nil {
		return fmt.Errorf("recover: %w", err)
	}
	fmt.Printf("selftest: recovered: %d FASEs rolled back, %d words restored\n",
		rep.FASEsRolledBack, rep.WordsRestored)
	if rep.FASEsRolledBack == 0 {
		return fmt.Errorf("the injected mid-FASE crash left nothing to roll back")
	}
	if err := st2.CheckInvariants(); err != nil {
		return fmt.Errorf("recovered tree corrupt: %w", err)
	}
	srv2, err := listen(st2)
	if err != nil {
		return err
	}

	// Verify through the protocol, with the same client parallelism.
	type kvPair struct{ k, v uint64 }
	work := make(chan kvPair, len(acked))
	for k, v := range acked {
		work <- kvPair{k, v}
	}
	close(work)
	lost := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := nvclient.Dial(srv2.Addr().String())
			if err != nil {
				lost <- err
				return
			}
			defer cl.Close()
			for p := range work {
				reply, err := cl.Do(fmt.Sprintf("GET %d", p.k))
				if err != nil {
					lost <- err
					return
				}
				if want := fmt.Sprintf("VAL %d", p.v); reply != want {
					lost <- fmt.Errorf("acked write %d lost: got %q, want %q", p.k, reply, want)
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-lost:
		return err
	default:
	}
	cl, err := nvclient.Dial(srv2.Addr().String())
	if err != nil {
		return err
	}
	for k := range nacked {
		reply, err := cl.Do(fmt.Sprintf("GET %d", k))
		if err != nil {
			return err
		}
		if reply != "NIL" {
			return fmt.Errorf("crash-refused write %d is durable (%q): half-committed batch", k, reply)
		}
	}
	fmt.Printf("selftest: zero acked-write loss (%d verified), %d refused writes all rolled back\n",
		len(acked), len(nacked))

	// Snapshot consistency: pin every shard's view, commit new writes over
	// them, and check the pinned views did not move.
	snaps := make([]*kv.Snapshot, st2.Shards())
	for i := range snaps {
		if snaps[i], err = st2.Snapshot(i); err != nil {
			return err
		}
	}
	sample := make([]kvPair, 0, 256)
	for k, v := range acked {
		sample = append(sample, kvPair{k, v})
		if len(sample) == cap(sample) {
			break
		}
	}
	for i := uint64(0); i < 512; i++ {
		k := uint64(1)<<48 | i // disjoint from client keys
		if _, err := cl.Do(fmt.Sprintf("PUT %d %d", k, i)); err != nil {
			return err
		}
	}
	for _, p := range sample {
		sn := snaps[st2.ShardFor(p.k)]
		if v, ok := sn.Get(p.k); !ok || v != p.v {
			return fmt.Errorf("snapshot of shard %d moved under concurrent commits: key %d = %d,%v",
				st2.ShardFor(p.k), p.k, v, ok)
		}
	}
	for _, sn := range snaps {
		sn.Release()
	}
	cl.Close()
	if err := srv2.Shutdown(); err != nil {
		return fmt.Errorf("graceful shutdown after recovery: %w", err)
	}
	fmt.Printf("selftest: snapshots stayed consistent under %d concurrent commits\n", 512)

	// Phase B: identical workload, fresh heap, one FASE per operation.
	fmt.Printf("selftest: phase B: per-op-commit baseline (batch=1), same workload, no crash\n")
	base := opts
	base.MaxBatch = 1
	hB := pmem.New(int(kv.RecommendedHeapBytes(base)))
	stB, err := kv.Open(hB, base)
	if err != nil {
		return err
	}
	srvB, err := listen(stB)
	if err != nil {
		return err
	}
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c uint64) {
			defer wg.Done()
			cl, err := nvclient.Dial(srvB.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for i := uint64(0); i < uint64(ops); i++ {
				k := c<<32 | i
				if reply, err := cl.Do(fmt.Sprintf("PUT %d %d", k, mix(k, seed))); err != nil || reply != "OK" {
					errs <- fmt.Errorf("baseline PUT %d: %q, %v", k, reply, err)
					return
				}
			}
		}(uint64(c))
	}
	wg.Wait()
	if err := srvB.Shutdown(); err != nil {
		return err
	}
	select {
	case err := <-errs:
		return err
	default:
	}
	statsB := kv.Totals(stB.Stats())

	groupRatio, baseRatio := statsA.FlushRatio(), statsB.FlushRatio()
	fmt.Printf("selftest: flush ratio: group commit %.3f (avg batch %.2f) vs per-op %.3f (%.1f%% fewer flushes/op)\n",
		groupRatio, statsA.AvgBatch(), baseRatio, 100*(1-groupRatio/baseRatio))
	if statsA.BatchedOps == 0 || statsB.BatchedOps == 0 {
		return fmt.Errorf("empty phase: group committed %d ops, baseline %d", statsA.BatchedOps, statsB.BatchedOps)
	}
	if groupRatio >= baseRatio {
		return fmt.Errorf("group commit did not reduce flushes per op: %.3f >= %.3f", groupRatio, baseRatio)
	}
	if exhaustive {
		if err := runCrashExploration(opts); err != nil {
			return err
		}
	}
	fmt.Println("selftest: PASS")
	return nil
}

// runCrashExploration is phase C, enabled by -exhaustive: the systematic
// crash-point sweep. A small group-commit workload under the server's
// policy is first run once to enumerate every persistence boundary (undo
// appends, line write-backs, drain steps, ack boundaries); then each site
// gets its own fresh store, an injected power failure at exactly that
// boundary, a recovery, and the full service-contract check. A seeded
// randomized concurrent sweep follows (override with -faultinject.seed;
// the seed is reported so failures replay exactly).
func runCrashExploration(opts kv.Options) error {
	fmt.Printf("selftest: phase C: exhaustive crash-point exploration (policy %v)\n", opts.Policy)
	fo := faultinject.DefaultKVOptions()
	fo.Policy = opts.Policy
	fo.Config = opts.Config
	rep, err := faultinject.ExploreKV(fo)
	if err != nil {
		return err
	}
	fmt.Printf("selftest: exhaustive: %v\n", rep)
	rrep, err := faultinject.ExploreKVRandom(fo)
	if err != nil {
		return err
	}
	fmt.Printf("selftest: randomized: %v\n", rrep)
	return nil
}

// mix derives a value from a key and the seed (splitmix-style, so verify
// can recompute it).
func mix(k, seed uint64) uint64 {
	x := k + seed*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	return x
}

// listen starts a server for st on an ephemeral loopback port.
func listen(st *kv.Store) (*server.Server, error) {
	return server.Start(st, "127.0.0.1:0", server.Options{})
}
