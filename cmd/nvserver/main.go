// Command nvserver serves the sharded, group-committing durable KV engine
// (internal/kv) over TCP, on an emulated NVRAM heap driven by the paper's
// adaptive persistence runtime. Run it plain to get a server, or with
// -selftest to run the end-to-end crash/recovery and group-commit
// efficiency check (see selftest.go).
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"nvmcache/internal/core"
	"nvmcache/internal/kv"
	"nvmcache/internal/pmem"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7070", "listen address")
		shards     = flag.Int("shards", 4, "independent shards (one tree + writer goroutine each)")
		batch      = flag.Int("batch", 64, "max operations per group commit (1 = one FASE per op)")
		delay      = flag.Duration("delay", 2*time.Millisecond, "max time a batch waits to fill")
		pool       = flag.Int("pool-pages", 1<<13, "per-shard B+-tree page pool capacity")
		policy     = flag.String("policy", "SC", "persistence policy: ER, LA, AT, SC, SC-offline, BEST")
		pipeline   = flag.Bool("pipeline", false, "asynchronous batched flush pipeline: overlap each batch's drain with the next batch's stores")
		pipeDepth  = flag.Int("pipeline-depth", 256, "pipeline ring capacity in pending line flushes (backpressure bound)")
		pipeBatch  = flag.Int("pipeline-batch", 64, "max lines per pipeline worker batch")
		selftest   = flag.Bool("selftest", false, "run the crash/recovery self-test and exit")
		exhaustive = flag.Bool("exhaustive", false, "self-test: add phase C, the exhaustive crash-point exploration")
		clients    = flag.Int("clients", 8, "self-test: concurrent closed-loop clients")
		ops        = flag.Int("ops", 2000, "self-test: PUT operations per client")
		seed       = flag.Uint64("seed", 1, "self-test: value-mixing seed")
	)
	flag.Parse()

	opts := kv.DefaultOptions()
	opts.Shards = *shards
	opts.MaxBatch = *batch
	opts.MaxDelay = *delay
	opts.PoolPages = *pool
	pk, err := parsePolicy(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nvserver:", err)
		os.Exit(2)
	}
	opts.Policy = pk
	if *pipeline {
		opts.Pipeline = core.PipelineConfig{Enabled: true, Depth: *pipeDepth, BatchSize: *pipeBatch}
	}

	if *selftest {
		if err := runSelfTest(opts, *clients, *ops, *seed, *exhaustive); err != nil {
			fmt.Fprintln(os.Stderr, "selftest: FAIL:", err)
			os.Exit(1)
		}
		return
	}
	if err := serve(*addr, opts); err != nil {
		fmt.Fprintln(os.Stderr, "nvserver:", err)
		os.Exit(1)
	}
}

func parsePolicy(name string) (core.PolicyKind, error) {
	for _, k := range core.AllPolicyKinds() {
		if strings.EqualFold(k.String(), name) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown policy %q (want ER, LA, AT, SC, SC-offline or BEST)", name)
}

// serve runs the server until SIGINT/SIGTERM, then shuts down gracefully:
// in-flight batches drain, commit and ack before the store closes.
func serve(addr string, opts kv.Options) error {
	h := pmem.New(int(kv.RecommendedHeapBytes(opts)))
	st, err := kv.Open(h, opts)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := newServer(st, ln)
	fmt.Printf("nvserver: serving on %s (shards=%d batch<=%d delay<=%v policy=%v pipeline=%v heap=%dKiB)\n",
		ln.Addr(), opts.Shards, opts.MaxBatch, opts.MaxDelay, opts.Policy,
		opts.Pipeline.Enabled, h.Size()/1024)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() {
		<-sig
		fmt.Println("nvserver: shutting down (draining pending batches)")
		done <- srv.shutdown()
	}()
	srv.serve()
	err = <-done
	for _, s := range st.Stats() {
		fmt.Println(s)
	}
	return err
}
