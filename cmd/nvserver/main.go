// Command nvserver serves the sharded, group-committing durable KV engine
// (internal/kv) over TCP, on an emulated NVRAM heap driven by the paper's
// adaptive persistence runtime. Run it plain to get a server, or with
// -selftest to run the end-to-end crash/recovery and group-commit
// efficiency check (see selftest.go).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"nvmcache/internal/adaptive"
	"nvmcache/internal/core"
	"nvmcache/internal/kv"
	"nvmcache/internal/pmem"
	"nvmcache/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7070", "listen address")
		shards     = flag.Int("shards", 4, "independent shards (one tree + writer goroutine each)")
		batch      = flag.Int("batch", 64, "max operations per group commit (1 = one FASE per op)")
		delay      = flag.Duration("delay", 2*time.Millisecond, "max time a batch waits to fill")
		pool       = flag.Int("pool-pages", 1<<13, "per-shard B+-tree page pool capacity")
		policy     = flag.String("policy", "SC", "persistence policy: ER, LA, AT, SC, SC-offline, BEST")
		duration   = flag.Duration("duration", 0, "serve for this long, then shut down gracefully (0 = until SIGINT/SIGTERM)")
		pipeline   = flag.Bool("pipeline", false, "asynchronous batched flush pipeline: overlap each batch's drain with the next batch's stores")
		pipeDepth  = flag.Int("pipeline-depth", 256, "pipeline ring capacity in pending line flushes (backpressure bound)")
		pipeBatch  = flag.Int("pipeline-batch", 64, "max lines per pipeline worker batch")
		absorb     = flag.Bool("absorb", false, "logical write absorption: same-key batch coalescing plus the INCR/DECR counter accumulator in front of group commit")
		absorbThr  = flag.Int("absorb-threshold", 0, "absorb: parked counter deltas that force an accumulator commit (0 = default)")
		absorbDl   = flag.Duration("absorb-deadline", 0, "absorb: max time an acked counter delta may sit volatile (0 = default)")
		adapt      = flag.Bool("adaptive", false, "online adaptive control plane: live MRC-driven cache, batch and pipeline sizing per shard (forces -policy SC-offline)")
		adaptEvery = flag.Duration("adaptive-interval", 100*time.Millisecond, "adaptive: decision period")
		ckptEvery  = flag.Duration("checkpoint-interval", 0, "per-shard checkpoints: publish a consistent image and truncate the redo journal this often (0 = off)")
		memBudget  = flag.Int("mem-budget", 0, "adaptive: cap on total write-cache lines across shards (0 = per-shard knee only)")
		selftest   = flag.Bool("selftest", false, "run the crash/recovery self-test and exit")
		exhaustive = flag.Bool("exhaustive", false, "self-test: add phase C, the exhaustive crash-point exploration")
		clients    = flag.Int("clients", 8, "self-test: concurrent closed-loop clients")
		ops        = flag.Int("ops", 2000, "self-test: PUT operations per client")
		seed       = flag.Uint64("seed", 1, "self-test: value-mixing seed")
	)
	flag.Parse()

	opts := kv.DefaultOptions()
	opts.Shards = *shards
	opts.MaxBatch = *batch
	opts.MaxDelay = *delay
	opts.PoolPages = *pool
	pk, err := parsePolicy(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nvserver:", err)
		os.Exit(2)
	}
	opts.Policy = pk
	if *pipeline {
		opts.Pipeline = core.PipelineConfig{Enabled: true, Depth: *pipeDepth, BatchSize: *pipeBatch}
	}
	if *absorb {
		opts.Absorb = kv.AbsorbConfig{Enabled: true, Threshold: *absorbThr, Deadline: *absorbDl}
	}
	if *ckptEvery > 0 {
		opts.Checkpoint = kv.CheckpointConfig{Enabled: true, Interval: *ckptEvery}
	}
	if *adapt {
		cfg := adaptive.DefaultConfig()
		cfg.Interval = *adaptEvery
		cfg.MemBudget = *memBudget
		opts.Adaptive = cfg
		// The store forces this anyway; set it here too so the serving
		// banner and -selftest report the policy actually running.
		opts.Policy = core.SoftCacheOffline
	}

	if *selftest {
		if err := runSelfTest(opts, *clients, *ops, *seed, *exhaustive); err != nil {
			fmt.Fprintln(os.Stderr, "selftest: FAIL:", err)
			os.Exit(1)
		}
		return
	}
	if err := serve(*addr, opts, *duration); err != nil {
		fmt.Fprintln(os.Stderr, "nvserver:", err)
		os.Exit(1)
	}
}

func parsePolicy(name string) (core.PolicyKind, error) {
	for _, k := range core.AllPolicyKinds() {
		if strings.EqualFold(k.String(), name) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown policy %q (want ER, LA, AT, SC, SC-offline or BEST)", name)
}

// serve runs the server until SIGINT/SIGTERM — or, with -duration, a
// deadline — then shuts down gracefully: accepting stops, connection
// readers unblock, and every batch already in the shard queues is
// committed, flushed and acked before the store closes, so a timed load
// run always ends with a clean durable state.
func serve(addr string, opts kv.Options, duration time.Duration) error {
	h := pmem.New(int(kv.RecommendedHeapBytes(opts)))
	st, err := kv.Open(h, opts)
	if err != nil {
		return err
	}
	srv, err := server.Start(st, addr, server.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("nvserver: serving on %s (shards=%d batch<=%d delay<=%v policy=%v pipeline=%v absorb=%v heap=%dKiB)\n",
		srv.Addr(), opts.Shards, opts.MaxBatch, opts.MaxDelay, opts.Policy,
		opts.Pipeline.Enabled, opts.Absorb.Enabled, h.Size()/1024)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	var timeout <-chan time.Time
	if duration > 0 {
		timeout = time.After(duration)
	}
	select {
	case <-sig:
		fmt.Println("nvserver: signal: shutting down (draining pending batches)")
	case <-timeout:
		fmt.Printf("nvserver: -duration %v elapsed: shutting down (draining pending batches)\n", duration)
	}
	err = srv.Shutdown()
	for _, s := range st.Stats() {
		fmt.Println(s)
	}
	return err
}
