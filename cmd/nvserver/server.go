package main

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"nvmcache/internal/kv"
)

// server speaks the line protocol over TCP on top of a kv.Store. One
// goroutine accepts; every connection gets its own handler goroutine, so a
// slow client never stalls the others — concurrency converges in the
// store's shard queues, where group commit batches it.
//
// Protocol (one request line, one reply line, decimal uint64 operands):
//
//	PUT <k> <v>  ->  OK
//	GET <k>      ->  VAL <v> | NIL
//	DEL <k>      ->  OK | NIL
//	STATS        ->  one line per shard, a total line, a stripes line, then END
//	QUIT         ->  BYE (server closes the connection)
//	anything else -> ERR <message>
//
// An OK reply to PUT/DEL is an ack-after-flush: the mutation's FASE has
// committed and drained, so it survives any later power failure.
type server struct {
	st     *kv.Store
	ln     net.Listener
	closed atomic.Bool

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	wg    sync.WaitGroup
}

func newServer(st *kv.Store, ln net.Listener) *server {
	return &server{st: st, ln: ln, conns: make(map[net.Conn]struct{})}
}

// serve accepts until the listener closes.
func (s *server) serve() {
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handle(c)
			s.mu.Lock()
			delete(s.conns, c)
			s.mu.Unlock()
		}()
	}
}

// shutdown stops accepting, unblocks every connection reader, waits for the
// handlers to finish, then closes the store gracefully: requests already in
// the shard queues are still batched, committed, flushed and acked before
// Close returns. On a crashed store the drain is impossible and Close
// reports ErrCrashed; shutdown passes that through.
func (s *server) shutdown() error {
	s.closed.Store(true)
	s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return s.st.Close()
}

func (s *server) handle(c net.Conn) {
	defer c.Close()
	sc := bufio.NewScanner(c)
	w := bufio.NewWriter(c)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		quit := s.command(w, fields)
		if err := w.Flush(); err != nil || quit {
			return
		}
	}
}

// command executes one request line and buffers the reply; it reports
// whether the connection should close.
func (s *server) command(w *bufio.Writer, f []string) (quit bool) {
	switch strings.ToUpper(f[0]) {
	case "PUT":
		k, v, err := parse2(f)
		if err != nil {
			fmt.Fprintf(w, "ERR usage: PUT <key> <value> (%v)\n", err)
			return false
		}
		if err := s.st.Put(k, v); err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return false
		}
		fmt.Fprintln(w, "OK")
	case "GET":
		k, err := parse1(f)
		if err != nil {
			fmt.Fprintf(w, "ERR usage: GET <key> (%v)\n", err)
			return false
		}
		v, ok, err := s.st.Get(k)
		switch {
		case err != nil:
			fmt.Fprintf(w, "ERR %v\n", err)
		case ok:
			fmt.Fprintf(w, "VAL %d\n", v)
		default:
			fmt.Fprintln(w, "NIL")
		}
	case "DEL":
		k, err := parse1(f)
		if err != nil {
			fmt.Fprintf(w, "ERR usage: DEL <key> (%v)\n", err)
			return false
		}
		found, err := s.st.Delete(k)
		switch {
		case err != nil:
			fmt.Fprintf(w, "ERR %v\n", err)
		case found:
			fmt.Fprintln(w, "OK")
		default:
			fmt.Fprintln(w, "NIL")
		}
	case "STATS":
		stats := s.st.Stats()
		for _, st := range stats {
			fmt.Fprintln(w, st)
		}
		tot := kv.Totals(stats)
		fmt.Fprintf(w, "total ops=%d gets=%d batches=%d avg_batch=%.2f flushes=%d flush_ratio=%.3f commit_p99=%.0fcyc\n",
			tot.BatchedOps, tot.Gets, tot.Batches, tot.AvgBatch(), tot.Flushes(), tot.FlushRatio(), tot.CommitP99)
		fmt.Fprintln(w, s.st.StripeSummary())
		fmt.Fprintln(w, "END")
	case "QUIT":
		fmt.Fprintln(w, "BYE")
		return true
	default:
		fmt.Fprintf(w, "ERR unknown command %q\n", f[0])
	}
	return false
}

func parse1(f []string) (uint64, error) {
	if len(f) != 2 {
		return 0, fmt.Errorf("want 1 operand, got %d", len(f)-1)
	}
	return strconv.ParseUint(f[1], 10, 64)
}

func parse2(f []string) (uint64, uint64, error) {
	if len(f) != 3 {
		return 0, 0, fmt.Errorf("want 2 operands, got %d", len(f)-1)
	}
	k, err := strconv.ParseUint(f[1], 10, 64)
	if err != nil {
		return 0, 0, err
	}
	v, err := strconv.ParseUint(f[2], 10, 64)
	return k, v, err
}
