// Command nvload is the open-loop load generator for nvserver: it sends
// operations at a fixed arrival rate across pipelined connections,
// measures latency from each operation's *intended* send time
// (coordinated-omission aware, wrk2-style), evaluates declared SLOs, and
// persists a BENCH_<exp>.json artifact with the full latency histogram
// and the server's STATS delta.
//
// Usage:
//
//	nvload -addr host:port [-rate 5000] [-conns 4] [-duration 10s | -ops N]
//	       [-proto text|binary]
//	       [-dist uniform|zipf|churn|scan|incr|kind@frac,kind@frac,...]
//	       [-mix put:2,get:2,incr:1,mget:1,mput:1,...]
//	       [-keys N] [-skew S] [-read-frac F] [-scan-len N] [-batch-len N] [-preload N]
//	       [-slo-p99 5ms] [-slo-p999 20ms] [-slo-min-tput 1000] [-slo-max-err 0.01]
//	       [-out BENCH_x.json] [-exp name]
//	nvload -selfhost ...          # boot an in-process nvserver, no -addr needed
//	nvload -check BENCH_x.json    # validate an artifact's schema and exit
//
// Exit status: 0 on success, 1 on error, 2 when the run finished but
// failed its declared SLO (so CI can gate on latency targets directly).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"nvmcache/internal/adaptive"
	"nvmcache/internal/kv"
	"nvmcache/internal/loadgen"
	"nvmcache/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", "", "nvserver address (host:port)")
		selfhost   = flag.Bool("selfhost", false, "boot an in-process nvserver on a loopback port and drive it")
		shards     = flag.Int("shards", 0, "shard count for -selfhost (0 = store default)")
		adapt      = flag.Bool("adaptive", false, "selfhost: run the online adaptive control plane (live MRC-driven cache, batch and pipeline sizing)")
		adaptEvery = flag.Duration("adaptive-interval", 100*time.Millisecond, "selfhost: adaptive decision period")
		memBudget  = flag.Int("mem-budget", 0, "selfhost: cap on total adaptive write-cache lines across shards (0 = per-shard knee only)")
		absorb     = flag.Bool("absorb", false, "selfhost: enable logical write absorption (counter accumulator + same-key coalescing)")
		absorbThr  = flag.Int("absorb-threshold", 0, "selfhost: parked counter deltas that force an accumulator commit (0 = default)")
		absorbDl   = flag.Duration("absorb-deadline", 0, "selfhost: max time an acked counter delta may sit volatile (0 = default)")
		rate       = flag.Float64("rate", 5000, "aggregate arrival rate, ops/sec (open loop)")
		conns      = flag.Int("conns", 4, "connection count the rate is spread across")
		duration   = flag.Duration("duration", 0, "length of the arrival schedule")
		ops        = flag.Int("ops", 0, "total operation count (alternative to -duration)")
		dist       = flag.String("dist", "uniform", "distribution: uniform, zipf, churn, scan, incr, or a kind@frac,... phase schedule")
		mix        = flag.String("mix", "", "weighted verb mix (verb:weight,... over get,put,del,incr,decr,scan,mget,mput); overrides -dist")
		keys       = flag.Uint64("keys", 1<<16, "keyspace size (churn: live-window size)")
		skew       = flag.Float64("skew", 1.1, "zipf skew parameter (>1)")
		readFrac   = flag.Float64("read-frac", 0.5, "GET fraction (scan: SCAN fraction)")
		scanLen    = flag.Int("scan-len", 16, "pairs per SCAN")
		batchLen   = flag.Int("batch-len", 8, "keys per MGET/MPUT (mix verbs mget, mput)")
		protoMode  = flag.String("proto", "text", "wire protocol: text or binary")
		preload    = flag.Uint64("preload", 0, "PUT keys [0,n) before the measured window")
		seed       = flag.Int64("seed", 42, "workload seed (same seed = same op stream)")
		timeout    = flag.Duration("timeout", 5*time.Second, "per-reply timeout")

		sloP50  = flag.Duration("slo-p50", 0, "SLO: max p50 latency (0 = unchecked)")
		sloP99  = flag.Duration("slo-p99", 0, "SLO: max p99 latency")
		sloP999 = flag.Duration("slo-p999", 0, "SLO: max p999 latency")
		sloTput = flag.Float64("slo-min-tput", 0, "SLO: min completed ops/sec")
		sloErr  = flag.Float64("slo-max-err", 0, "SLO: max (errors+timeouts)/sent fraction")

		out   = flag.String("out", "", "write the BENCH artifact (JSON) here")
		exp   = flag.String("exp", "loadgen", "experiment id stamped into the artifact")
		check = flag.String("check", "", "validate an existing BENCH artifact and exit")
	)
	flag.Parse()

	if *check != "" {
		b, err := loadgen.ReadBench(*check)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: valid %s artifact, experiment %q, commit %.12s, %d observations\n",
			*check, b.Schema, b.Experiment, b.Git.Commit, b.Metrics.Completed)
		return
	}

	target := *addr
	if *selfhost {
		kvOpts := kv.DefaultOptions()
		if *shards > 0 {
			kvOpts.Shards = *shards
		}
		if *adapt {
			cfg := adaptive.DefaultConfig()
			cfg.Interval = *adaptEvery
			cfg.MemBudget = *memBudget
			kvOpts.Adaptive = cfg
		}
		if *absorb {
			kvOpts.Absorb = kv.AbsorbConfig{
				Enabled:   true,
				Threshold: *absorbThr,
				Deadline:  *absorbDl,
			}
		}
		srv, err := server.SelfHost(kvOpts, server.Options{})
		if err != nil {
			fatal(err)
		}
		defer srv.Shutdown()
		target = srv.Addr().String()
		fmt.Fprintf(os.Stderr, "nvload: self-hosted nvserver on %s\n", target)
	}

	base := loadgen.Spec{Keys: *keys, Skew: *skew, ReadFrac: *readFrac, ScanLen: *scanLen, BatchLen: *batchLen}
	var spec loadgen.Spec
	var err error
	if *mix != "" {
		spec, err = loadgen.ParseMix(*mix, base)
	} else {
		spec, err = loadgen.ParseDist(*dist, base)
	}
	if err != nil {
		fatal(err)
	}
	cfg := loadgen.Config{
		Addr:     target,
		Rate:     *rate,
		Conns:    *conns,
		Duration: *duration,
		Ops:      *ops,
		Dist:     spec,
		Seed:     *seed,
		Proto:    *protoMode,
		Timeout:  *timeout,
		Preload:  *preload,
	}
	slo := loadgen.SLO{P50: *sloP50, P99: *sloP99, P999: *sloP999,
		MinThroughput: *sloTput, MaxErrorFrac: *sloErr}
	if !slo.IsZero() {
		cfg.SLO = &slo
	}

	rep, err := loadgen.Run(cfg)
	if err != nil {
		fatal(err)
	}
	printReport(rep)

	if *out != "" {
		if err := loadgen.WriteBench(*out, rep.Bench(*exp)); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if rep.SLO != nil && !rep.SLO.Pass {
		os.Exit(2)
	}
}

func printReport(r *loadgen.Report) {
	fmt.Printf("dist=%s rate=%.0f/s conns=%d\n", r.Config.Dist.Name(), r.Config.Rate, r.Config.Conns)
	fmt.Printf("sent=%d completed=%d errors=%d timeouts=%d in %v (%.0f ops/s)\n",
		r.Sent, r.Completed, r.Errors, r.Timeouts,
		r.Elapsed.Round(time.Millisecond), r.Throughput())
	fmt.Printf("latency (from intended send): p50=%v p90=%v p99=%v p999=%v max=%v\n",
		r.Hist.Quantile(0.50).Round(time.Microsecond),
		r.Hist.Quantile(0.90).Round(time.Microsecond),
		r.Hist.Quantile(0.99).Round(time.Microsecond),
		r.Hist.Quantile(0.999).Round(time.Microsecond),
		r.Hist.Max().Round(time.Microsecond))
	for i, h := range r.PhaseHists {
		fmt.Printf("  phase %d (%s): completed=%d p50=%v p99=%v\n",
			i, r.PhaseNames[i], h.Count(),
			h.Quantile(0.50).Round(time.Microsecond),
			h.Quantile(0.99).Round(time.Microsecond))
	}
	if d := r.ServerDelta; len(d) > 0 {
		fmt.Printf("server: ops=%.0f puts=%.0f gets=%.0f dels=%.0f scans=%.0f flush_ratio_pts=%.3f stripe_contended=%.0f\n",
			d["total.ops"], d["total.puts"], d["total.gets"], d["total.dels"], d["total.scans"],
			d["total.flush_ratio"], d["stripes.contended"])
		if ctr := d["total.incrs"] + d["total.decrs"]; ctr > 0 {
			fmt.Printf("absorb: incrs=%.0f decrs=%.0f absorbed=%.0f committed=%.0f\n",
				d["total.incrs"], d["total.decrs"],
				d["total.absorbed_ops"], d["total.committed_ops"])
		}
	}
	if r.SLO != nil {
		fmt.Println(r.SLO.String())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nvload:", err)
	os.Exit(1)
}
