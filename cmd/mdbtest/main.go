// Command mdbtest runs the Mtest workload (Section IV-C) on the MDB
// key-value store under a chosen persistence policy and reports flush
// statistics, with an optional crash-recovery check at the end.
//
// Usage:
//
//	mdbtest [-inserts 10000] [-threads 2] [-policy SC] [-crash]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nvmcache/internal/atlas"
	"nvmcache/internal/core"
	"nvmcache/internal/mdb"
	"nvmcache/internal/pmem"
)

func main() {
	inserts := flag.Int("inserts", 10000, "keys to insert")
	threads := flag.Int("threads", 2, "writer threads (private trees)")
	policy := flag.String("policy", "SC", "persistence policy: ER, LA, AT, SC, SC-offline, BEST")
	crash := flag.Bool("crash", false, "simulate a crash mid-transaction and verify recovery")
	flag.Parse()

	if err := run(*inserts, *threads, *policy, *crash); err != nil {
		fmt.Fprintln(os.Stderr, "mdbtest:", err)
		os.Exit(1)
	}
}

func parsePolicy(s string) (core.PolicyKind, error) {
	for _, k := range core.AllPolicyKinds() {
		if strings.EqualFold(k.String(), s) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown policy %q", s)
}

func run(inserts, threads int, policyName string, crash bool) error {
	kind, err := parsePolicy(policyName)
	if err != nil {
		return err
	}
	cfg := mdb.DefaultMtest()
	cfg.Inserts = inserts
	cfg.Prepopulate = inserts
	cfg.Threads = threads
	res, err := mdb.RunMtest(cfg)
	if err != nil {
		return err
	}
	st := res.Stats
	fmt.Printf("Mtest: %d keys final, %d stores, %d FASEs (%.0f stores/FASE)\n",
		res.FinalKeys, st.TotalWrites, st.TotalFASEs,
		float64(st.TotalWrites)/float64(st.TotalFASEs))

	pcfg := core.DefaultConfig()
	pcfg.BurstLength = 4096
	ratio := core.FlushRatio(kind, pcfg, res.Trace)
	la := core.FlushRatio(core.Lazy, pcfg, res.Trace)
	fmt.Printf("policy %s: flush ratio %.5f (lazy lower bound %.5f, eager 1.0)\n", kind, ratio, la)

	if crash {
		if err := crashCheck(kind); err != nil {
			return err
		}
		fmt.Println("crash check: committed transaction survived, torn transaction rolled back")
	}
	return nil
}

// crashCheck runs a tiny store, crashes mid-transaction, recovers and
// verifies atomicity.
func crashCheck(kind core.PolicyKind) error {
	h := pmem.New(1 << 24)
	opts := atlas.DefaultOptions()
	opts.Policy = kind
	opts.LogEntries = 1 << 15
	rt := atlas.NewRuntime(h, opts)
	th, err := rt.NewThread()
	if err != nil {
		return err
	}
	db, err := mdb.Open(th)
	if err != nil {
		return err
	}
	if err := db.Begin(); err != nil {
		return err
	}
	for i := uint64(0); i < 100; i++ {
		if err := db.Put(i, i); err != nil {
			return err
		}
	}
	if err := db.Commit(); err != nil {
		return err
	}
	// Crash mid-transaction.
	if err := db.Begin(); err != nil {
		return err
	}
	_ = db.Put(1, 999999)
	h.Crash()
	if _, err := atlas.Recover(h); err != nil {
		return err
	}
	rt2 := atlas.NewRuntime(h, opts)
	th2, err := rt2.NewThread()
	if err != nil {
		return err
	}
	db2, err := mdb.Reopen(th2)
	if err != nil {
		return err
	}
	if kind == core.Best {
		return fmt.Errorf("BEST is deliberately unsound; crash check is not meaningful")
	}
	for i := uint64(0); i < 100; i++ {
		if v, ok := db2.Get(i); !ok || v != i {
			return fmt.Errorf("key %d lost or wrong after recovery (%d, %v)", i, v, ok)
		}
	}
	if v, _ := db2.Get(1); v == 999999 {
		return fmt.Errorf("torn transaction leaked")
	}
	return nil
}
