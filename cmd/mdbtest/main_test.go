package main

import (
	"os"
	"testing"
)

// quietly redirects the command's stdout chatter to /dev/null for the
// duration of f, keeping test output readable.
func quietly(t *testing.T, f func() error) error {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		devnull.Close()
	}()
	return f()
}

// TestRunSmoke drives the command's whole path — Mtest workload, flush
// ratios, and the crash/recovery check — at a size small enough for CI.
func TestRunSmoke(t *testing.T) {
	if err := quietly(t, func() error {
		return run(500, 1, "SC", true)
	}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunPolicyErrors(t *testing.T) {
	if err := run(10, 1, "no-such-policy", false); err == nil {
		t.Error("unknown policy not rejected")
	}
	if err := quietly(t, func() error {
		return run(100, 1, "BEST", true)
	}); err == nil {
		t.Error("BEST crash check should report it is unsound")
	}
}
