// Command tracegen records a workload's persistent-write trace to a file
// in the repository's binary trace format, for offline analysis with
// cmd/mrc or replay in custom tools.
//
// Usage:
//
//	tracegen -workload barnes -o barnes.nvmt [-scale 0.00390625] [-threads 4] [-seed 42]
//	tracegen -info trace.nvmt
package main

import (
	"flag"
	"fmt"
	"os"

	"nvmcache/internal/harness"
	"nvmcache/internal/trace"
)

func main() {
	workload := flag.String("workload", "", "workload to record (see nvbench)")
	out := flag.String("o", "", "output file")
	scale := flag.Float64("scale", 1.0/256, "workload scale")
	threads := flag.Int("threads", 1, "thread count")
	seed := flag.Int64("seed", 42, "generation seed")
	info := flag.String("info", "", "print statistics of an existing trace file")
	flag.Parse()

	if err := run(*workload, *out, *scale, *threads, *seed, *info); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(workload, out string, scale float64, threads int, seed int64, info string) error {
	if info != "" {
		f, err := os.Open(info)
		if err != nil {
			return err
		}
		defer f.Close()
		tr, err := trace.Decode(f)
		if err != nil {
			return err
		}
		st := trace.ComputeStats(tr)
		fmt.Printf("threads:        %d\n", st.Threads)
		fmt.Printf("stores:         %d\n", st.TotalWrites)
		fmt.Printf("FASEs:          %d\n", st.TotalFASEs)
		fmt.Printf("distinct lines: %d\n", st.DistinctLine)
		fmt.Printf("LA lower bound: %d flushes (ratio %.5f)\n",
			st.LAFlushes, float64(st.LAFlushes)/float64(st.TotalWrites))
		return nil
	}
	if workload == "" || out == "" {
		return fmt.Errorf("pass -workload and -o (or -info <file>)")
	}
	w, err := harness.WorkloadByName(harness.Workloads(), workload)
	if err != nil {
		return err
	}
	tr, err := w.Trace(scale, threads, seed)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.Encode(f, tr); err != nil {
		return err
	}
	st := trace.ComputeStats(tr)
	fmt.Printf("wrote %s: %d threads, %d stores, %d FASEs\n", out, st.Threads, st.TotalWrites, st.TotalFASEs)
	return nil
}
