package main

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"nvmcache/internal/harness"
	"nvmcache/internal/trace"
)

// TestRunGoldenRoundTrip records a workload to a file exactly as the
// command does, then decodes it through internal/trace and checks it is
// bit-identical to generating the same workload in process: the golden
// guarantee that the file format loses nothing.
func TestRunGoldenRoundTrip(t *testing.T) {
	out := filepath.Join(t.TempDir(), "golden.nvmt")
	const (
		name    = "water-spatial"
		scale   = 1.0 / 1024
		threads = 2
		seed    = 42
	)
	if err := run(name, out, scale, threads, seed, ""); err != nil {
		t.Fatalf("run: %v", err)
	}

	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	decoded, err := trace.Decode(f)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}

	w, err := harness.WorkloadByName(harness.Workloads(), name)
	if err != nil {
		t.Fatal(err)
	}
	want, err := w.Trace(scale, threads, seed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(trace.ComputeStats(decoded), trace.ComputeStats(want)) {
		t.Fatalf("decoded stats differ:\n got %+v\nwant %+v",
			trace.ComputeStats(decoded), trace.ComputeStats(want))
	}
	if len(decoded.Threads) != len(want.Threads) {
		t.Fatalf("thread count: got %d, want %d", len(decoded.Threads), len(want.Threads))
	}
	for i := range want.Threads {
		if !reflect.DeepEqual(decoded.Threads[i], want.Threads[i]) {
			t.Fatalf("thread %d round-trip not bit-identical", i)
		}
	}

	// The -info path must read the same file back without error.
	if err := run("", "", 0, 0, 0, out); err != nil {
		t.Fatalf("run -info: %v", err)
	}
}

func TestRunArgumentErrors(t *testing.T) {
	if err := run("", "", 1, 1, 1, ""); err == nil {
		t.Error("missing -workload/-o not rejected")
	}
	if err := run("no-such-workload", filepath.Join(t.TempDir(), "x"), 1, 1, 1, ""); err == nil {
		t.Error("unknown workload not rejected")
	}
	if err := run("", "", 0, 0, 0, filepath.Join(t.TempDir(), "missing.nvmt")); err == nil {
		t.Error("missing -info file not rejected")
	}
}
