package main

import (
	"os"
	"path/filepath"
	"testing"

	"nvmcache/internal/harness"
	"nvmcache/internal/trace"
)

// quietly redirects the command's stdout chatter to /dev/null for the
// duration of f, keeping test output readable.
func quietly(t *testing.T, f func() error) error {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		devnull.Close()
	}()
	return f()
}

func TestRunWorkloadSmoke(t *testing.T) {
	if err := quietly(t, func() error {
		return run("water-spatial", "", 0, 1.0/1024, 10, 0, false)
	}); err != nil {
		t.Fatalf("run(workload): %v", err)
	}
	if err := quietly(t, func() error {
		return run("water-spatial", "", 0, 1.0/1024, 10, 4096, true)
	}); err != nil {
		t.Fatalf("run(workload, -compare): %v", err)
	}
}

func TestRunTraceFileSmoke(t *testing.T) {
	w, err := harness.WorkloadByName(harness.Workloads(), "water-spatial")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := w.Trace(1.0/1024, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.nvmt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Encode(f, tr); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := quietly(t, func() error {
		return run("", path, 1, 1, 10, 0, false)
	}); err != nil {
		t.Fatalf("run(trace): %v", err)
	}
}

func TestRunArgumentErrors(t *testing.T) {
	if err := run("", "", 0, 1, 10, 0, false); err == nil {
		t.Error("missing inputs not rejected")
	}
	if err := run("a", "b", 0, 1, 10, 0, false); err == nil {
		t.Error("conflicting -workload and -trace not rejected")
	}
	if err := quietly(t, func() error {
		return run("water-spatial", "", 99, 1.0/1024, 10, 0, false)
	}); err == nil {
		t.Error("out-of-range -thread not rejected")
	}
}
