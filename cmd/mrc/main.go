// Command mrc computes miss ratio curves for persistent-write traces: the
// standalone face of the paper's Section III analysis.
//
// Usage:
//
//	mrc -workload water-spatial [-scale 0.00390625] [-max 50] [-compare]
//	mrc -trace file.nvmt [-thread 0]
//
// With -compare it prints the exact (LRU-simulated), full-trace converted
// and burst-sampled curves side by side (the paper's Figure 7 view);
// otherwise it prints the converted curve with knees and the selected
// capacity.
package main

import (
	"flag"
	"fmt"
	"os"

	"nvmcache/internal/harness"
	"nvmcache/internal/locality"
	"nvmcache/internal/sampling"
	"nvmcache/internal/trace"
)

func main() {
	workload := flag.String("workload", "", "built-in workload name (see nvbench)")
	traceFile := flag.String("trace", "", "binary trace file (see trace.Encode)")
	threadIdx := flag.Int("thread", 0, "thread to analyze")
	scale := flag.Float64("scale", 1.0/256, "workload scale")
	maxSize := flag.Int("max", 50, "maximum cache capacity")
	burst := flag.Int("burst", 0, "sampled burst length (0 = auto)")
	compare := flag.Bool("compare", false, "print actual vs full-trace vs sampled curves")
	flag.Parse()

	if err := run(*workload, *traceFile, *threadIdx, *scale, *maxSize, *burst, *compare); err != nil {
		fmt.Fprintln(os.Stderr, "mrc:", err)
		os.Exit(1)
	}
}

func run(workload, traceFile string, threadIdx int, scale float64, maxSize, burst int, compare bool) error {
	var tr *trace.Trace
	switch {
	case workload != "" && traceFile != "":
		return fmt.Errorf("pass -workload or -trace, not both")
	case workload != "":
		w, err := harness.WorkloadByName(harness.Workloads(), workload)
		if err != nil {
			return err
		}
		tr, err = w.Trace(scale, 1, 42)
		if err != nil {
			return err
		}
	case traceFile != "":
		f, err := os.Open(traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		tr, err = trace.Decode(f)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("pass -workload <name> or -trace <file>")
	}
	if threadIdx < 0 || threadIdx >= len(tr.Threads) {
		return fmt.Errorf("thread %d out of range (trace has %d)", threadIdx, len(tr.Threads))
	}
	seq := tr.Threads[threadIdx]
	renamed := trace.RenameFASEs(seq)

	cfg := locality.DefaultKneeConfig()
	cfg.MaxSize = maxSize
	fullProf := locality.ProfileBurst(renamed, maxSize)
	full := fullProf.MRC

	if !compare {
		fmt.Printf("# %d writes, %d FASEs; working set %.0f lines, hotness %.3f; knees %v; selected size %d\n",
			seq.NumWrites(), seq.NumFASEs(), fullProf.WorkingSet, fullProf.Hotness,
			locality.Knees(full, cfg), locality.SelectSize(full, cfg))
		fmt.Print(full.String())
		return nil
	}

	actual := locality.StackDistanceMRC(renamed, maxSize)
	if burst <= 0 {
		burst = harness.BurstFor(int64(seq.NumWrites()))
	}
	smp := sampling.New(sampling.DefaultConfig(burst))
	for i := 0; i < seq.NumFASEs() && smp.Collecting(); i++ {
		for _, line := range seq.FASE(i) {
			if smp.RecordStore(line) {
				break
			}
		}
		smp.FASEEnd()
	}
	sampled := locality.ProfileBurst(smp.Burst(), maxSize).MRC

	fmt.Printf("# capacity actual full sampled (burst %d writes)\n", len(smp.Burst()))
	for c := 0; c <= maxSize; c++ {
		fmt.Printf("%d\t%.6f\t%.6f\t%.6f\n", c, actual.At(c), full.At(c), sampled.At(c))
	}
	fmt.Printf("# selected: actual %d, full %d, sampled %d\n",
		locality.SelectSize(actual, cfg), locality.SelectSize(full, cfg), locality.SelectSize(sampled, cfg))
	return nil
}
