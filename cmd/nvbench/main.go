// Command nvbench reproduces the paper's tables and figures.
//
// Usage:
//
//	nvbench -exp table1|figure2|table2|table3|figure4|figure5|figure6|table4|figure7|figure8|sizes|all
//	        [-scale 0.00390625] [-threads N] [-seed 42]
//
// -scale 1 regenerates paper-size traces (hundreds of millions of stores;
// slow); the default 1/256 preserves every flush ratio and speedup shape.
package main

import (
	"flag"
	"fmt"
	"os"

	"nvmcache/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (table1, figure2, table2, table3, figure4, figure5, figure6, table4, figure7, figure8, sizes, all)")
	scale := flag.Float64("scale", 1.0/256, "workload scale relative to the paper's problem sizes")
	threads := flag.Int("threads", 1, "thread count for single-run experiments")
	seed := flag.Int64("seed", 42, "workload generation seed")
	format := flag.String("format", "table", "output format: table or csv")
	plot := flag.Bool("plot", false, "also render figures as ASCII charts")
	flag.Parse()

	opt := harness.DefaultRunOptions()
	opt.Scale = *scale
	opt.Threads = *threads
	opt.Seed = *seed

	if err := run(*exp, opt, *format, *plot); err != nil {
		fmt.Fprintln(os.Stderr, "nvbench:", err)
		os.Exit(1)
	}
}

func run(exp string, opt harness.RunOptions, format string, plot bool) error {
	show := func(t *harness.Table) {
		if format == "csv" {
			fmt.Print(t.CSV())
			return
		}
		fmt.Println(t.String())
	}
	all := exp == "all"
	ran := false

	if all || exp == "table1" {
		r, err := harness.EagerSlowdown(opt)
		if err != nil {
			return err
		}
		show(r.Table())
		ran = true
	}
	if all || exp == "figure2" {
		r, err := harness.MRCOf("water-spatial", opt)
		if err != nil {
			return err
		}
		if plot {
			fmt.Println(harness.PlotCurve(
				fmt.Sprintf("Figure 2: MRC of %s (chosen %d)", r.Program, r.Chosen),
				[]string{"miss ratio"}, [][]float64{r.Miss}, 12))
		} else {
			show(r.Table())
		}
		ran = true
	}
	if all || exp == "table2" {
		r, err := harness.MDBTable2(opt)
		if err != nil {
			return err
		}
		show(r.Table())
		ran = true
	}
	if all || exp == "table3" {
		r, err := harness.FlushRatiosTable3(opt)
		if err != nil {
			return err
		}
		show(r.Table())
		ran = true
	}
	if all || exp == "figure4" {
		r, err := harness.SpeedupsFigure4(opt)
		if err != nil {
			return err
		}
		show(r.Table())
		if plot {
			labels := make([]string, len(r.Rows))
			vals := make([]float64, len(r.Rows))
			for i, row := range r.Rows {
				labels[i], vals[i] = row.Name, row.SC
			}
			fmt.Println(harness.PlotBars("Figure 4: SC speedup over ER", labels, vals, "x"))
		}
		ran = true
	}
	if all || exp == "figure5" || exp == "figure6" {
		r, err := harness.ParallelFigures56(opt, nil)
		if err != nil {
			return err
		}
		if all || exp == "figure5" {
			show(r.Figure5Table())
		}
		if all || exp == "figure6" {
			show(r.Figure6Table())
		}
		ran = true
	}
	if all || exp == "table4" {
		r, err := harness.WaterSpatialTable4(opt, nil)
		if err != nil {
			return err
		}
		show(r.Table())
		ran = true
	}
	if all || exp == "figure7" {
		for _, name := range harness.Figure7Programs {
			r, err := harness.MRCAccuracyFigure7(name, opt)
			if err != nil {
				return err
			}
			if plot {
				fmt.Println(harness.PlotCurve(
					fmt.Sprintf("Figure 7: %s (actual/full/sampled select %d/%d/%d)",
						r.Program, r.ChosenActual, r.ChosenFull, r.ChosenSampled),
					[]string{"actual", "full-trace", "sampled"},
					[][]float64{r.Actual, r.Full, r.Sampled}, 12))
			} else {
				show(r.Table())
			}
		}
		ran = true
	}
	if all || exp == "figure8" {
		r, err := harness.OnlineOverheadFigure8(opt, nil)
		if err != nil {
			return err
		}
		show(r.Table())
		ran = true
	}
	if all || exp == "sizes" {
		r, err := harness.SelectedSizes(opt)
		if err != nil {
			return err
		}
		show(r.Table())
		ran = true
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
