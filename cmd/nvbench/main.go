// Command nvbench reproduces the paper's tables and figures.
//
// Usage:
//
//	nvbench -list
//	nvbench -exp table1|figure2|table2|table3|figure4|figure5|figure6|table4|figure7|figure8|sizes|all
//	        [-scale 0.00390625] [-threads N] [-seed 42] [-out BENCH_x.json]
//
// -out additionally persists every rendered table as a benchfmt-enveloped
// JSON artifact (schema, git commit, timestamp) for trajectory diffing;
// -exp loadgen runs the open-loop latency sweep from internal/loadgen
// against a self-hosted nvserver.
//
// -scale 1 regenerates paper-size traces (hundreds of millions of stores;
// slow); the default 1/256 preserves every flush ratio and speedup shape.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"nvmcache/internal/benchfmt"
	"nvmcache/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (see -list)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	scale := flag.Float64("scale", 1.0/256, "workload scale relative to the paper's problem sizes")
	threads := flag.Int("threads", 1, "thread count for single-run experiments")
	seed := flag.Int64("seed", 42, "workload generation seed")
	format := flag.String("format", "table", "output format: table or csv")
	plot := flag.Bool("plot", false, "also render figures as ASCII charts")
	out := flag.String("out", "", "also persist every table as a BENCH JSON artifact at this path")
	check := flag.String("check", "", "validate a BENCH artifact written by -out and exit")
	flag.Parse()

	if *list {
		listExperiments(os.Stdout)
		return
	}
	if *check != "" {
		if err := checkArtifact(*check); err != nil {
			fmt.Fprintln(os.Stderr, "nvbench:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: ok\n", *check)
		return
	}

	opt := harness.DefaultRunOptions()
	opt.Scale = *scale
	opt.Threads = *threads
	opt.Seed = *seed

	c := &runCtx{opt: opt, format: *format, plot: *plot}
	if err := run(c, *exp); err != nil {
		fmt.Fprintln(os.Stderr, "nvbench:", err)
		if _, ok := lookup(*exp); !ok && *exp != "all" {
			listExperiments(os.Stderr)
		}
		os.Exit(1)
	}
	if *out != "" {
		if err := writeArtifact(*out, *exp, c.tables); err != nil {
			fmt.Fprintln(os.Stderr, "nvbench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

// runCtx carries one invocation's options plus a cache for harness runs
// shared between experiments (figure5 and figure6 render the same sweep).
type runCtx struct {
	opt    harness.RunOptions
	format string
	plot   bool

	par56  *harness.ParallelResult
	tables []*harness.Table // everything shown, for -out
}

func (c *runCtx) show(t *harness.Table) {
	c.tables = append(c.tables, t)
	if c.format == "csv" {
		fmt.Print(t.CSV())
		return
	}
	fmt.Println(t.String())
}

// benchTables is the -out artifact: the benchfmt envelope plus every table
// the invocation rendered, machine-readable for trajectory diffing.
type benchTables struct {
	benchfmt.Meta
	Tables []tableJSON `json:"tables"`
}

type tableJSON struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

func writeArtifact(path, exp string, tables []*harness.Table) error {
	art := benchTables{Meta: benchfmt.NewMeta("nvbench_" + exp)}
	for _, t := range tables {
		art.Tables = append(art.Tables, tableJSON{
			Title: t.Title, Headers: t.Headers, Rows: t.Rows, Notes: t.Notes,
		})
	}
	return benchfmt.WriteFile(path, art)
}

// checkArtifact validates a -out artifact: intact envelope, at least one
// table, and rectangular rows. CI runs this against every checked-in and
// freshly generated BENCH file so a truncated or hand-mangled artifact
// fails fast instead of silently drifting.
func checkArtifact(path string) error {
	var art benchTables
	if err := benchfmt.ReadFile(path, &art); err != nil {
		return err
	}
	if err := art.Meta.Validate(); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(art.Tables) == 0 {
		return fmt.Errorf("%s: no tables", path)
	}
	for _, t := range art.Tables {
		if t.Title == "" || len(t.Headers) == 0 || len(t.Rows) == 0 {
			return fmt.Errorf("%s: table %q is empty", path, t.Title)
		}
		for i, row := range t.Rows {
			if len(row) != len(t.Headers) {
				return fmt.Errorf("%s: table %q row %d has %d cells, want %d",
					path, t.Title, i, len(row), len(t.Headers))
			}
		}
	}
	return nil
}

func (c *runCtx) parallel56() (*harness.ParallelResult, error) {
	if c.par56 == nil {
		r, err := harness.ParallelFigures56(c.opt, nil)
		if err != nil {
			return nil, err
		}
		c.par56 = r
	}
	return c.par56, nil
}

// experiment is one reproducible artifact of the paper.
type experiment struct {
	id   string
	desc string
	run  func(c *runCtx) error
}

// experiments is the registry, in the paper's presentation order. "all"
// runs them top to bottom.
var experiments = []experiment{
	{"table1", "Table I: slowdown of eager persistence vs transient runs", func(c *runCtx) error {
		r, err := harness.EagerSlowdown(c.opt)
		if err != nil {
			return err
		}
		c.show(r.Table())
		return nil
	}},
	{"figure2", "Figure 2: miss-ratio curve of water-spatial and the chosen cache size", func(c *runCtx) error {
		r, err := harness.MRCOf("water-spatial", c.opt)
		if err != nil {
			return err
		}
		if c.plot {
			fmt.Println(harness.PlotCurve(
				fmt.Sprintf("Figure 2: MRC of %s (chosen %d)", r.Program, r.Chosen),
				[]string{"miss ratio"}, [][]float64{r.Miss}, 12))
			return nil
		}
		c.show(r.Table())
		return nil
	}},
	{"table2", "Table II: mdb B+-tree insert throughput under each policy", func(c *runCtx) error {
		r, err := harness.MDBTable2(c.opt)
		if err != nil {
			return err
		}
		c.show(r.Table())
		return nil
	}},
	{"table3", "Table III: flush ratios of all six policies over twelve workloads", func(c *runCtx) error {
		r, err := harness.FlushRatiosTable3(c.opt)
		if err != nil {
			return err
		}
		c.show(r.Table())
		return nil
	}},
	{"figure4", "Figure 4: single-thread speedups of each policy over eager", func(c *runCtx) error {
		r, err := harness.SpeedupsFigure4(c.opt)
		if err != nil {
			return err
		}
		c.show(r.Table())
		if c.plot {
			labels := make([]string, len(r.Rows))
			vals := make([]float64, len(r.Rows))
			for i, row := range r.Rows {
				labels[i], vals[i] = row.Name, row.SC
			}
			fmt.Println(harness.PlotBars("Figure 4: SC speedup over ER", labels, vals, "x"))
		}
		return nil
	}},
	{"figure5", "Figure 5: SPLASH2 thread-sweep speedups (software cache)", func(c *runCtx) error {
		r, err := c.parallel56()
		if err != nil {
			return err
		}
		c.show(r.Figure5Table())
		return nil
	}},
	{"figure6", "Figure 6: SPLASH2 thread-sweep flush ratios", func(c *runCtx) error {
		r, err := c.parallel56()
		if err != nil {
			return err
		}
		c.show(r.Figure6Table())
		return nil
	}},
	{"table4", "Table IV: water-spatial under the L1 cache simulator, by thread count", func(c *runCtx) error {
		r, err := harness.WaterSpatialTable4(c.opt, nil)
		if err != nil {
			return err
		}
		c.show(r.Table())
		return nil
	}},
	{"figure7", "Figure 7: MRC accuracy — actual vs full-trace vs sampled, per program", func(c *runCtx) error {
		for _, name := range harness.Figure7Programs {
			r, err := harness.MRCAccuracyFigure7(name, c.opt)
			if err != nil {
				return err
			}
			if c.plot {
				fmt.Println(harness.PlotCurve(
					fmt.Sprintf("Figure 7: %s (actual/full/sampled select %d/%d/%d)",
						r.Program, r.ChosenActual, r.ChosenFull, r.ChosenSampled),
					[]string{"actual", "full-trace", "sampled"},
					[][]float64{r.Actual, r.Full, r.Sampled}, 12))
				continue
			}
			c.show(r.Table())
		}
		return nil
	}},
	{"figure8", "Figure 8: runtime overhead of online cache-size selection", func(c *runCtx) error {
		r, err := harness.OnlineOverheadFigure8(c.opt, nil)
		if err != nil {
			return err
		}
		c.show(r.Table())
		return nil
	}},
	{"contention", "store-throughput scaling of the sharded heap (wall clock, 1/2/4/8 goroutines)", func(c *runCtx) error {
		copt := harness.DefaultContentionOptions()
		if c.opt.Threads > 1 {
			copt.Goroutines = nil
			for g := 1; g <= c.opt.Threads; g *= 2 {
				copt.Goroutines = append(copt.Goroutines, g)
			}
		}
		r, err := harness.StoreScaling(copt)
		if err != nil {
			return err
		}
		c.show(r.Table())
		return nil
	}},
	{"overlap", "flush/compute overlap: sync FASE-end drains vs the pipelined publish/await protocol", func(c *runCtx) error {
		o := harness.DefaultOverlapOptions()
		// -scale is relative to the default store count here (the overlap
		// experiment is not a paper artifact): the default 1/256 keeps the
		// default 200k stores; CI smoke runs pass a tiny scale.
		if s := c.opt.Scale * 256; s > 0 && s != 1 {
			o.Stores = int(float64(o.Stores) * s)
			if min := 4 * o.FASELength; o.Stores < min {
				o.Stores = min
			}
		}
		r, err := harness.FlushOverlap(o)
		if err != nil {
			return err
		}
		c.show(r.Table())
		return nil
	}},
	{"sizes", "Section IV-G: cache sizes the offline selection picks per program", func(c *runCtx) error {
		r, err := harness.SelectedSizes(c.opt)
		if err != nil {
			return err
		}
		c.show(r.Table())
		return nil
	}},
	{"faultinject", "crash-point exploration: sites explored and recovery invariants passed", func(c *runCtx) error {
		r, err := harness.CrashExploration(0)
		if err != nil {
			return err
		}
		c.show(r.Table())
		return nil
	}},
	{"loadgen", "open-loop latency sweep: every distribution against a self-hosted nvserver", func(c *runCtx) error {
		opt := harness.DefaultLoadgenOptions()
		// -scale shrinks the per-distribution op budget (CI smoke runs pass
		// a tiny scale); the arrival rate stays fixed so percentiles remain
		// comparable across scales.
		if s := c.opt.Scale * 256; s > 0 && s != 1 {
			opt.Ops = int(float64(opt.Ops) * s)
			if opt.Ops < 500 {
				opt.Ops = 500
			}
		}
		opt.Seed = c.opt.Seed
		r, err := harness.LoadgenSweep(opt)
		if err != nil {
			return err
		}
		c.show(r.Table())
		return nil
	}},
	{"proto", "wire protocol A/B: the same open-loop mix over text vs binary framing, with allocs/op", func(c *runCtx) error {
		opt := harness.DefaultProtoOptions()
		// -scale shrinks the per-side op budget (CI smoke runs pass a tiny
		// scale); the arrival rate stays fixed so percentiles and the
		// alloc/op comparison remain meaningful across scales.
		if s := c.opt.Scale * 256; s > 0 && s != 1 {
			opt.Ops = int(float64(opt.Ops) * s)
			if opt.Ops < 1000 {
				opt.Ops = 1000
			}
		}
		opt.Seed = c.opt.Seed
		r, err := harness.ProtoAB(opt)
		if err != nil {
			return err
		}
		// The refactor's acceptance gates. Allocations gate strictly: the
		// binary hot path must be cheaper per op than text rendering and
		// parsing. Throughput gates tolerantly — at a fixed arrival rate
		// both sides complete the same schedule, so equal-ish throughput
		// plus lower allocs/op is the win condition (a hard > would flake
		// on scheduling noise).
		if r.Binary.AllocsPerOp >= r.Text.AllocsPerOp {
			return fmt.Errorf("binary protocol allocs/op %.2f not below text %.2f",
				r.Binary.AllocsPerOp, r.Text.AllocsPerOp)
		}
		if bt, tt := r.Binary.Report.Throughput(), r.Text.Report.Throughput(); bt < 0.9*tt {
			return fmt.Errorf("binary throughput %.0f ops/s below 0.9x text %.0f", bt, tt)
		}
		c.show(r.Table())
		return nil
	}},
	{"absorb", "logical write absorption: committed vs issued ops on a counter-heavy mix, absorption off vs on", func(c *runCtx) error {
		opt := harness.DefaultAbsorbOptions()
		// -scale shrinks the op budget like the loadgen sweep; the arrival
		// rate and key space stay fixed so the fold rate remains comparable.
		if s := c.opt.Scale * 256; s > 0 && s != 1 {
			opt.Ops = int(float64(opt.Ops) * s)
			if opt.Ops < 1000 {
				opt.Ops = 1000
			}
		}
		opt.Seed = c.opt.Seed
		r, err := harness.AbsorbSweep(opt)
		if err != nil {
			return err
		}
		if r.On.Committed >= r.On.Issued {
			return fmt.Errorf("absorb run committed %.0f of %.0f issued writes — nothing absorbed",
				r.On.Committed, r.On.Issued)
		}
		c.show(r.Table())
		return nil
	}},
	{"recovery", "bounded-time recovery: full journal replay vs per-shard checkpoint + suffix, crash-injected", func(c *runCtx) error {
		opt := harness.DefaultRecoveryOptions()
		// -scale shrinks the key-space axis; the overwrite factor and tail
		// stay fixed so the replayed-vs-restored ratio is comparable.
		if s := c.opt.Scale * 256; s > 0 && s != 1 {
			scaled := opt.Sizes[:0]
			for _, sz := range opt.Sizes {
				sz = int(float64(sz) * s)
				if sz < 512 {
					sz = 512
				}
				if n := len(scaled); n == 0 || scaled[n-1] != sz {
					scaled = append(scaled, sz)
				}
			}
			opt.Sizes = scaled
		}
		opt.Seed = c.opt.Seed
		r, err := harness.RecoverySweep(opt)
		if err != nil {
			return err
		}
		// The bounded-recovery gate: at the largest heap the checkpointed
		// store must come back strictly faster than full journal replay.
		if lg := r.Largest(); lg != nil && lg.Ckpt.RecoverMS >= lg.Baseline.RecoverMS {
			return fmt.Errorf("checkpointed recovery (%.2fms) not faster than full replay (%.2fms) at %d keys",
				lg.Ckpt.RecoverMS, lg.Baseline.RecoverMS, lg.Keys)
		}
		c.show(r.Table())
		return nil
	}},
	{"adaptive", "online adaptive control plane: static vs adaptive per-phase latency on a phase-changing schedule", func(c *runCtx) error {
		opt := harness.DefaultAdaptiveOptions()
		// -scale shrinks the op budget like the loadgen sweep; the arrival
		// rate and decision interval stay fixed.
		if s := c.opt.Scale * 256; s > 0 && s != 1 {
			opt.Ops = int(float64(opt.Ops) * s)
			if opt.Ops < 1500 {
				opt.Ops = 1500
			}
		}
		opt.Seed = c.opt.Seed
		r, err := harness.AdaptiveSweep(opt)
		if err != nil {
			return err
		}
		c.show(r.Table())
		c.show(r.TrajectoryTable())
		return nil
	}},
}

func lookup(id string) (experiment, bool) {
	for _, e := range experiments {
		if e.id == id {
			return e, true
		}
	}
	return experiment{}, false
}

func listExperiments(w io.Writer) {
	fmt.Fprintln(w, "experiments:")
	for _, e := range experiments {
		fmt.Fprintf(w, "  %-8s  %s\n", e.id, e.desc)
	}
	fmt.Fprintf(w, "  %-8s  %s\n", "all", "every experiment above, in order")
}

func run(c *runCtx, exp string) error {
	if exp == "all" {
		for _, e := range experiments {
			if err := e.run(c); err != nil {
				return fmt.Errorf("%s: %w", e.id, err)
			}
		}
		return nil
	}
	e, ok := lookup(exp)
	if !ok {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return e.run(c)
}
