package main

import (
	"strings"
	"testing"
)

// TestListExperiments pins the -list surface: every registered experiment
// shows up with a description, and the ids the README advertises exist.
func TestListExperiments(t *testing.T) {
	var b strings.Builder
	listExperiments(&b)
	out := b.String()
	for _, e := range experiments {
		if !strings.Contains(out, e.id) {
			t.Errorf("-list output missing experiment %q", e.id)
		}
		if e.desc == "" {
			t.Errorf("experiment %q has no description", e.id)
		}
	}
	for _, id := range []string{"table1", "figure7", "contention", "faultinject", "all"} {
		if !strings.Contains(out, id) {
			t.Errorf("-list output missing %q:\n%s", id, out)
		}
	}
}

func TestLookup(t *testing.T) {
	if _, ok := lookup("table1"); !ok {
		t.Error("lookup(table1) failed")
	}
	if _, ok := lookup("no-such-experiment"); ok {
		t.Error("lookup invented an experiment")
	}
	ids := make(map[string]bool)
	for _, e := range experiments {
		if ids[e.id] {
			t.Errorf("duplicate experiment id %q", e.id)
		}
		ids[e.id] = true
	}
}
