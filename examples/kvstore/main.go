// kvstore: a durable key-value store with transactions, snapshots and
// crash recovery, built on the MDB copy-on-write B+-tree and the adaptive
// software cache.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"log"

	"nvmcache/internal/atlas"
	"nvmcache/internal/core"
	"nvmcache/internal/mdb"
	"nvmcache/internal/pmem"
)

func main() {
	heap := pmem.New(1 << 24)
	opts := atlas.DefaultOptions()
	opts.Policy = core.SoftCacheOnline
	opts.LogEntries = 1 << 15
	rt := atlas.NewRuntime(heap, opts)
	th, err := rt.NewThread()
	if err != nil {
		log.Fatal(err)
	}
	db, err := mdb.Open(th)
	if err != nil {
		log.Fatal(err)
	}

	// A durable transaction: all or nothing.
	must(db.Begin())
	for i := uint64(0); i < 1000; i++ {
		must(db.Put(i, i*i))
	}
	must(db.Commit())
	fmt.Printf("committed %d keys in generation %d\n", db.Count(), db.Generation())

	// Snapshot isolation: readers see the tree as of their snapshot.
	db.DisableRecycling()
	snap := db.Snapshot()
	must(db.Begin())
	must(db.Put(7, 7777))
	must(db.Commit())
	v, _ := db.GetSnapshot(snap, 7)
	cur, _ := db.Get(7)
	fmt.Printf("key 7: snapshot sees %d, current sees %d\n", v, cur)

	// Crash mid-transaction: the torn transaction vanishes, committed data
	// survives.
	must(db.Begin())
	must(db.Put(7, 0xDEAD))
	must(db.Put(100001, 1))
	heap.Crash()
	rep, err := atlas.Recover(heap)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovery rolled back %d torn transaction(s), restored %d words\n",
		rep.FASEsRolledBack, rep.WordsRestored)

	rt2 := atlas.NewRuntime(heap, opts)
	th2, err := rt2.NewThread()
	if err != nil {
		log.Fatal(err)
	}
	db2, err := mdb.Reopen(th2)
	if err != nil {
		log.Fatal(err)
	}
	v7, _ := db2.Get(7)
	_, leaked := db2.Get(100001)
	fmt.Printf("after restart: key 7 = %d (committed value), torn insert present: %v\n", v7, leaked)
	if err := db2.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("tree invariants hold after recovery")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
