// Quickstart: persist data through a failure-atomic section and watch the
// adaptive software cache save cache-line flushes compared with eager
// persistence.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"nvmcache/internal/atlas"
	"nvmcache/internal/core"
	"nvmcache/internal/pmem"
)

func main() {
	// An emulated NVRAM heap: writes are volatile until a policy flushes
	// their cache lines; Crash() drops everything unflushed.
	heap := pmem.New(1 << 20)

	// Run the same mutation under the eager policy and under the paper's
	// adaptive software cache, counting write-backs.
	for _, kind := range []core.PolicyKind{core.Eager, core.SoftCacheOnline} {
		h := pmem.New(1 << 20)
		opts := atlas.DefaultOptions()
		opts.Policy = kind
		opts.Config.BurstLength = 2048 // sample early, adapt early
		rt := atlas.NewRuntime(h, opts)
		th, err := rt.NewThread()
		if err != nil {
			log.Fatal(err)
		}
		addr, err := h.AllocLines(64 * 26) // a 26-line array
		if err != nil {
			log.Fatal(err)
		}

		// One failure-atomic section: sweep the array many times, as the
		// paper's persistent-array micro-benchmark does.
		th.FASEBegin()
		for pass := 0; pass < 100; pass++ {
			for i := uint64(0); i < 26*8; i++ {
				th.Store64(addr+i*8, uint64(pass)<<32|i)
			}
		}
		th.FASEEnd()
		rt.Close()

		st := rt.FlushStats()
		fmt.Printf("%-4s %6d stores -> %6d cache-line flushes (ratio %.4f)\n",
			kind, th.Stores(), st.Total(), float64(st.Total())/float64(th.Stores()))
	}

	// And the durability part: a committed FASE survives a power failure.
	opts := atlas.DefaultOptions()
	rt := atlas.NewRuntime(heap, opts)
	th, err := rt.NewThread()
	if err != nil {
		log.Fatal(err)
	}
	a, err := heap.Alloc(8)
	if err != nil {
		log.Fatal(err)
	}
	th.FASEBegin()
	th.Store64(a, 0xC0FFEE)
	th.FASEEnd()

	heap.Crash() // power failure
	if _, err := atlas.Recover(heap); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after crash+recovery the committed value is %#x\n", heap.ReadUint64(a))
}
