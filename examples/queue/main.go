// queue: a persistent concurrent FIFO queue (Michael–Scott two-lock
// algorithm) shared by several goroutines, every operation failure-atomic.
// A crash may interrupt the run at any point; recovery always exposes a
// consistent queue.
//
//	go run ./examples/queue
package main

import (
	"fmt"
	"log"
	"sync"

	"nvmcache/internal/atlas"
	"nvmcache/internal/bench"
	"nvmcache/internal/core"
	"nvmcache/internal/pmem"
)

func main() {
	heap := pmem.New(1 << 22)
	opts := atlas.DefaultOptions()
	opts.Policy = core.SoftCacheOnline
	rt := atlas.NewRuntime(heap, opts)

	setup, err := rt.NewThread()
	if err != nil {
		log.Fatal(err)
	}
	q, err := bench.NewMSQueue(setup)
	if err != nil {
		log.Fatal(err)
	}

	// Four producers, each with its own runtime thread (and its own
	// software cache — the paper's per-thread, lock-free design).
	const producers, perProducer = 4, 500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		th, err := rt.NewThread()
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(p int, th *atlas.Thread) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if err := q.Enqueue(th, uint64(p*perProducer+i)); err != nil {
					log.Fatal(err)
				}
			}
		}(p, th)
	}
	wg.Wait()
	fmt.Printf("enqueued %d elements across %d producers\n", q.Len(setup), producers)

	// Power failure. Every committed enqueue survives.
	heap.Crash()
	if _, err := atlas.Recover(heap); err != nil {
		log.Fatal(err)
	}
	rt2 := atlas.NewRuntime(heap, opts)
	th2, err := rt2.NewThread()
	if err != nil {
		log.Fatal(err)
	}
	// The queue header survives at the same address; drain it.
	sum := uint64(0)
	n := 0
	for {
		v, ok := q.Dequeue(th2)
		if !ok {
			break
		}
		sum += v
		n++
	}
	want := uint64(producers*perProducer) * uint64(producers*perProducer-1) / 2
	fmt.Printf("after crash: drained %d elements, checksum %d (want %d, match=%v)\n",
		n, sum, want, sum == want && n == producers*perProducer)

	st := rt.FlushStats()
	fmt.Printf("persistence cost: %d flushes for %d operations\n", st.Total(), producers*perProducer)
}
