// adaptive: watch the Section III machinery work — generate a write trace
// with a known working set, compute reuse(k) with the linear-time
// algorithm, verify the duality reuse(k) + fp(k) = k, convert to a miss
// ratio curve, find the knees, and let the online controller discover the
// same capacity from a sampled burst.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"

	"nvmcache/internal/core"
	"nvmcache/internal/locality"
	"nvmcache/internal/trace"
)

func main() {
	// A workload with nested loops: every pass sweeps an 18-line array and
	// then revisits a hot 6-line subset — the kind of multi-knee MRC the
	// paper's Figure 2 shows (a small knee at the hot set, a big one at
	// the full working set).
	b := trace.NewBuilder(0)
	b.Begin()
	for pass := 0; pass < 600; pass++ {
		for l := 0; l < 18; l++ {
			for v := 0; v < 4; v++ {
				b.Store(trace.LineAddr(l))
			}
		}
		for l := 0; l < 6; l++ {
			for v := 0; v < 4; v++ {
				b.Store(trace.LineAddr(l))
			}
		}
	}
	b.End()
	seq := b.Finish()
	renamed := trace.RenameFASEs(seq)

	// The paper's linear-time locality analysis.
	rc := locality.ReuseAll(renamed)
	fc := locality.FootprintAll(renamed)
	k := len(renamed) / 2
	fmt.Printf("trace: %d writes; reuse(%d)=%.1f, fp(%d)=%.1f, sum=%.1f (= k, Eq. 5)\n",
		len(renamed), k, rc.Reuse[k], k, fc.Fp[k], rc.Reuse[k]+fc.Fp[k])

	cfg := locality.DefaultKneeConfig()
	mrc := locality.MRCFromReuse(rc, cfg.MaxSize)
	fmt.Printf("MRC knees: %v; selected capacity: %d\n",
		locality.Knees(mrc, cfg), locality.SelectSize(mrc, cfg))
	for _, c := range []int{1, 6, 7, 17, 18, 19, 50} {
		fmt.Printf("  miss ratio at capacity %2d: %.4f\n", c, mrc.At(c))
	}

	// The online policy discovers the same capacity from one sampled
	// burst and resizes itself mid-run.
	pcfg := core.DefaultConfig()
	pcfg.BurstLength = 2048
	cf := core.NewCountingSink(nil)
	policy := core.NewPolicy(core.SoftCacheOnline, pcfg, cf)
	core.RunSeq(policy, seq)
	rep := policy.(core.SizeReporter).AdaptReport()
	fmt.Printf("online controller: started at %d, analyzed %d writes, chose %d\n",
		rep.InitialSize, rep.AnalyzedWrites, rep.ChosenSize)
	fmt.Printf("flush ratio with adaptation: %.5f (eager would be 1.0)\n",
		float64(cf.Stats().Total())/float64(seq.NumWrites()))
}
