// Package nvmcache reproduces "Adaptive Software Caching for Efficient
// NVRAM Data Persistence" (Li, Chakrabarti, Ding, Yuan — IPDPS 2017) as a
// Go library: a per-thread, adaptive, write-combining software cache that
// minimizes the cache-line flushes required to keep failure-atomic program
// state in persistent memory, together with the reuse-based locality
// theory that sizes it and the full evaluation harness that regenerates
// the paper's tables and figures.
//
// The implementation lives in internal/ packages (see DESIGN.md for the
// map); cmd/nvbench, cmd/mrc and cmd/mdbtest are the executables, and
// examples/ shows the public API in use. The benchmarks in this directory
// regenerate each table and figure: run
//
//	go test -bench=. -benchmem
package nvmcache
