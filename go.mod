module nvmcache

go 1.22
