package nvmcache_test

// One benchmark per table and figure of the paper's evaluation. Each
// iteration regenerates the experiment at a reduced scale (1/2048 of the
// paper's problem sizes — the flush ratios and speedup shapes are scale
// invariant; see internal/splash's calibration tests) and reports the
// experiment's headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// both exercises the full pipeline and prints the reproduced results.
// cmd/nvbench runs the same experiments at the default (larger) scale.

import (
	"testing"

	"nvmcache/internal/harness"
	"nvmcache/internal/locality"
	"nvmcache/internal/trace"
)

func benchOpt() harness.RunOptions {
	opt := harness.DefaultRunOptions()
	opt.Scale = 1.0 / 2048
	return opt
}

// BenchmarkTable1EagerSlowdown regenerates Table I: the slowdown of eager
// persistence on the SPLASH2 programs (paper average 22x).
func BenchmarkTable1EagerSlowdown(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		r, err := harness.EagerSlowdown(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		avg = r.Average
	}
	b.ReportMetric(avg, "avg-slowdown-x")
}

// BenchmarkFigure2MRC regenerates Figure 2: water-spatial's miss ratio
// curve and the knee-based size selection (paper selects 23).
func BenchmarkFigure2MRC(b *testing.B) {
	var chosen float64
	for i := 0; i < b.N; i++ {
		r, err := harness.MRCOf("water-spatial", benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		chosen = float64(r.Chosen)
	}
	b.ReportMetric(chosen, "chosen-size")
}

// BenchmarkTable2MDB regenerates Table II: Mtest on MDB under the five
// techniques (paper: SC 5.07x over ER, BEST 6.94x).
func BenchmarkTable2MDB(b *testing.B) {
	var sc, best float64
	for i := 0; i < b.N; i++ {
		r, err := harness.MDBTable2(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		sc, best = r.Speedup[2], r.Speedup[4]
	}
	b.ReportMetric(sc, "sc-speedup-x")
	b.ReportMetric(best, "best-speedup-x")
}

// BenchmarkTable3FlushRatios regenerates Table III over all twelve
// workloads (paper headline: SC reduces write-backs 11.88x vs AT).
func BenchmarkTable3FlushRatios(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		r, err := harness.FlushRatiosTable3(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		avg = r.AvgATOverSC
	}
	b.ReportMetric(avg, "avg-AT/SC-x")
}

// BenchmarkFigure4Speedups regenerates Figure 4: speedups over eager
// persistence (paper averages: AT 4.5x, SC 9.6x, BEST 16.1x).
func BenchmarkFigure4Speedups(b *testing.B) {
	var sc, best float64
	for i := 0; i < b.N; i++ {
		r, err := harness.SpeedupsFigure4(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		sc, best = r.AvgSC, r.AvgBest
	}
	b.ReportMetric(sc, "avg-sc-x")
	b.ReportMetric(best, "avg-best-x")
}

// BenchmarkFigure5Parallel regenerates Figure 5: SC vs AT across thread
// counts (paper: SC wins 85% of cells).
func BenchmarkFigure5Parallel(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		r, err := harness.ParallelFigures56(benchOpt(), []int{1, 4, 16})
		if err != nil {
			b.Fatal(err)
		}
		frac = r.FracSCBeatsAT
	}
	b.ReportMetric(100*frac, "sc-beats-at-%")
}

// BenchmarkFigure6Overhead regenerates Figure 6: the slowdown of SC over
// the no-flush upper bound (paper: 1-2x for most programs).
func BenchmarkFigure6Overhead(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		r, err := harness.ParallelFigures56(benchOpt(), []int{1, 8})
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, row := range r.Rows {
			if row.SCSlowdownVsBest > worst {
				worst = row.SCSlowdownVsBest
			}
		}
	}
	b.ReportMetric(worst, "worst-sc/best-x")
}

// BenchmarkTable4WaterSpatial regenerates Table IV: water-spatial's
// instructions, flush ratios and L1 miss ratios across thread counts.
func BenchmarkTable4WaterSpatial(b *testing.B) {
	var atFlush, scFlush float64
	for i := 0; i < b.N; i++ {
		r, err := harness.WaterSpatialTable4(benchOpt(), []int{1, 8})
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range r.Cells {
			if c.Threads != 1 {
				continue
			}
			switch c.Policy.String() {
			case "AT":
				atFlush = 100 * c.FlushRatio
			case "SC":
				scFlush = 100 * c.FlushRatio
			}
		}
	}
	b.ReportMetric(atFlush, "at-flush-%")
	b.ReportMetric(scFlush, "sc-flush-%")
}

// BenchmarkFigure7MRCAccuracy regenerates Figure 7: actual vs full-trace
// vs sampled MRC (the paper's point: all three select the same size).
func BenchmarkFigure7MRCAccuracy(b *testing.B) {
	agree := 0.0
	for i := 0; i < b.N; i++ {
		agree = 0
		for _, name := range harness.Figure7Programs {
			r, err := harness.MRCAccuracyFigure7(name, benchOpt())
			if err != nil {
				b.Fatal(err)
			}
			if d := r.ChosenSampled - r.ChosenActual; d >= -3 && d <= 3 {
				agree++
			}
		}
	}
	b.ReportMetric(agree, "agreeing-programs")
}

// BenchmarkFigure8OnlineOverhead regenerates Figure 8: the cost of online
// cache-size selection (paper average 6.78%).
func BenchmarkFigure8OnlineOverhead(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		r, err := harness.OnlineOverheadFigure8(benchOpt(), []int{1})
		if err != nil {
			b.Fatal(err)
		}
		avg = 100 * r.Average
	}
	b.ReportMetric(avg, "avg-overhead-%")
}

// BenchmarkSectionIVGSizes regenerates the Section IV-G selected cache
// sizes (paper: 15, 10, 2, 8, 3, 28, 23, 20).
func BenchmarkSectionIVGSizes(b *testing.B) {
	var exact float64
	for i := 0; i < b.N; i++ {
		r, err := harness.SelectedSizes(harness.DefaultRunOptions())
		if err != nil {
			b.Fatal(err)
		}
		exact = 0
		for i := range r.Names {
			if r.Chosen[i] == r.Paper[i] {
				exact++
			}
		}
	}
	b.ReportMetric(exact, "exact-matches")
}

// BenchmarkReuseAnalysisThroughput measures the core linear-time
// algorithm's throughput on a paper-scale burst (64M-write bursts at full
// scale make this the component whose complexity the paper emphasizes).
func BenchmarkReuseAnalysisThroughput(b *testing.B) {
	w, err := harness.WorkloadByName(harness.Workloads(), "water-spatial")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := w.Trace(1.0/256, 1, 42)
	if err != nil {
		b.Fatal(err)
	}
	renamed := trace.RenameFASEs(tr.Threads[0])
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		locality.MRCFromReuse(locality.ReuseAll(renamed), 50)
	}
	b.SetBytes(int64(8 * len(renamed)))
}
